// Fixed-size thread pool with a chunked parallel_for and a task group.
//
// The paper's Table I shows the algorithm's concurrency (mostly mean-shift
// seeds) scaling to 24 cores. radloc funnels all parallelism through this
// pool so thread count is an explicit experiment parameter.
//
// Two levels of parallelism share one pool (DESIGN.md §5.6):
//
//   outer  TaskGroup::run       trial-grained tasks (run_experiment)
//   inner  parallel_for         weight-update / mean-shift chunks
//
// Nesting policy: a parallel_for issued from a thread that is already
// executing pool work (a worker running a task, or a caller running its own
// chunk) runs inline on that thread instead of fanning out. This is both the
// deadlock guard — pool threads never block waiting on pool threads — and
// the oversubscription guard: N outer trials never explode into N x M inner
// chunks. Threads that do wait (TaskGroup::wait, parallel_for's caller)
// steal queued work instead of idling, so a waiter can never deadlock the
// pool either. Which thread runs a chunk never affects results — chunks
// cover disjoint index ranges and reductions stay serial in index order.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace radloc {

class ThreadPool {
 public:
  /// `num_threads` == 1 (or 0) means run inline on the caller with no worker
  /// threads at all — the serial baseline for scaling experiments.
  ///
  /// parallel_for never fans out wider than the host's core count (extra
  /// chunks on an oversubscribed host only buy context switches); pass
  /// `max_fanout` > 0 to override that cap, e.g. to exercise the dispatch
  /// machinery in tests regardless of host.
  explicit ThreadPool(std::size_t num_threads, std::size_t max_fanout = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  [[nodiscard]] std::size_t num_threads() const { return workers_.size() + 1; }

  /// Runs fn(i) for i in [0, n); blocks until all iterations finish. The
  /// range is split into contiguous chunks, one per thread (iterations
  /// should be of comparable cost — true for mean-shift seeds and particle
  /// weighting).  Called from inside pool work it runs inline on the calling
  /// thread (see the nesting policy above).
  ///
  /// Exception safety: a throwing chunk never escapes a worker thread (which
  /// would std::terminate the process). The FIRST exception of the wave is
  /// captured; the remaining chunks still run (one failure does not cancel
  /// the wave — chunks are independent by contract), and the exception is
  /// rethrown here, at the call site, once every chunk has retired. The pool
  /// stays fully usable afterwards.
  void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& chunk_fn);

  /// Element-wise convenience over the chunked form.
  template <typename Fn>
  void for_each_index(std::size_t n, Fn&& fn) {
    parallel_for(n, [&fn](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }

  /// True when the calling thread is currently executing work scheduled on
  /// THIS pool (a worker running a job, or a caller running its own chunk /
  /// a stolen job). parallel_for uses this to detect nesting.
  [[nodiscard]] bool in_pool_work() const;

  /// Point-in-time pool telemetry (the observability layer surfaces these
  /// through callback gauges — see service/session_manager.cpp).
  ///   queue_depth     jobs enqueued but not yet picked up
  ///   tasks_executed  jobs retired through the queue machinery, including
  ///                   TaskGroup::run's inline fallback on a workerless
  ///                   pool (caller-owned parallel_for chunks are not jobs)
  ///   steals          of those, jobs executed by a WAITING thread (a
  ///                   TaskGroup/parallel_for waiter draining the queue
  ///                   instead of idling) rather than a pool worker
  struct PoolStats {
    std::size_t queue_depth = 0;
    std::uint64_t tasks_executed = 0;
    std::uint64_t steals = 0;
  };
  [[nodiscard]] PoolStats stats() const;

 private:
  /// Completion state for one wave of jobs (one parallel_for call or one
  /// TaskGroup). Guarded by the owning pool's mutex; waiters block on the
  /// pool-wide condition variable. `error` holds the first exception thrown
  /// by any job of the wave, to be rethrown at the wave's wait point.
  struct Sync {
    std::size_t remaining = 0;
    std::exception_ptr error;
  };

  /// A queued unit of work: either an owned closure (TaskGroup submission)
  /// or a borrowed chunk function + index range (parallel_for, whose caller
  /// outlives the wave by construction).
  struct Job {
    std::function<void()> owned;
    const std::function<void(std::size_t, std::size_t)>* chunk = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
    Sync* sync = nullptr;
  };

 public:
  /// Non-blocking task submission: run() enqueues a task on the pool and
  /// returns immediately; wait() (and the destructor) blocks until every
  /// submitted task finished — stealing queued pool work while it waits, so
  /// a group waiting inside pool work can never stall the pool. On a pool
  /// with no workers (num_threads <= 1) run() executes the task inline on
  /// the caller, preserving the serial baseline.
  ///
  /// Exception safety: a throwing task never escapes a worker (or run(), on
  /// the inline path). The group's first exception is captured and rethrown
  /// by wait(), after every submitted task retired; the other tasks still
  /// run and the group/pool stay usable. The destructor waits but swallows
  /// an unobserved exception (destructors must not throw) — call wait() to
  /// observe failures.
  ///
  /// A TaskGroup is owned by one submitting thread: run()/wait() are not
  /// themselves thread-safe (the tasks, of course, run concurrently).
  class TaskGroup {
   public:
    explicit TaskGroup(ThreadPool& pool) : pool_(&pool) {}
    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;
    ~TaskGroup() {
      // Wait without rethrowing: a throwing destructor would terminate.
      pool_->wait_for_collect(sync_);
    }

    void run(std::function<void()> fn);
    void wait() { pool_->wait_for(sync_); }

   private:
    ThreadPool* pool_;
    Sync sync_;
  };

 private:
  void worker_loop();
  /// Runs the job with the nesting marker set, then retires it on its Sync.
  /// A throwing job body is caught and recorded as the Sync's first error.
  void execute(Job& job);
  /// Blocks until sync.remaining == 0, executing queued jobs while any are
  /// available (work-stealing wait); rethrows the wave's captured exception.
  void wait_for(Sync& sync);
  /// wait_for, but returns the captured exception (cleared from the Sync)
  /// instead of throwing — the destructor-safe variant.
  std::exception_ptr wait_for_collect(Sync& sync);
  /// Records `err` as sync's first error (first writer wins). Thread-safe.
  void record_error(Sync& sync, std::exception_ptr err);

  std::vector<std::thread> workers_;
  std::size_t hw_threads_ = 1;  ///< host core count; caps parallel_for fan-out
  mutable std::mutex mu_;  ///< mutable: const stats() reads the queue depth
  /// One condition variable for every event: job enqueued, a Sync reaching
  /// zero, shutdown. Waiters re-check their own predicate; the queue only
  /// transitions empty -> non-empty under notify_all, so no wakeup is lost.
  std::condition_variable cv_;
  std::deque<Job> queue_;
  bool stopping_ = false;
  // Telemetry tallies (see PoolStats). Relaxed: approximate mid-wave reads
  // are fine for monitoring; totals are exact once the pool is quiescent.
  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> steals_{0};
};

}  // namespace radloc

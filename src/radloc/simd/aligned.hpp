// 32-byte-aligned storage for the SoA particle arrays and cache grids.
//
// The batch kernels (simd/simd.hpp) stream over contiguous double/Point2
// arrays. They use unaligned loads — correct at any offset, since callers
// hand them mid-array chunk slices — but keeping the *storage* 32-byte
// aligned means full-width accesses never straddle an extra cache line and
// aligned loads and unaligned loads hit the same fast path on every x86
// generation that matters. Non-x86 builds keep the allocator too: it is
// plain standard C++ (aligned operator new) with no intrinsics.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace radloc::simd {

/// Widest vector the kernel tiers use (AVX2, 4 doubles).
inline constexpr std::size_t kVectorAlign = 32;

template <typename T, std::size_t Align = kVectorAlign>
class AlignedAllocator {
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of two");
  static_assert(Align >= alignof(T), "alignment must not weaken the type's own");

 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n > SIZE_MAX / sizeof(T)) throw std::bad_alloc();
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{Align}));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) { return true; }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) { return false; }
};

/// std::vector whose buffer starts on a 32-byte boundary. Drop-in for the
/// particle SoA arrays: spans, iterators and algorithms are unaffected.
template <typename T>
using AVector = std::vector<T, AlignedAllocator<T>>;

[[nodiscard]] inline bool is_vector_aligned(const void* p) {
  return (reinterpret_cast<std::uintptr_t>(p) % kVectorAlign) == 0;
}

/// Debug-build alignment check for buffers handed to the batch kernels.
/// Empty vectors may have a null/unallocated data(), which is fine.
inline void assert_vector_aligned([[maybe_unused]] const void* p) {
  assert(p == nullptr || is_vector_aligned(p));
}

}  // namespace radloc::simd

// Batch kernels for the particle hot path, behind a runtime-dispatched
// tier table (AVX2 -> SSE2 -> scalar).
//
// The three kernels the profile names — Poisson log-PMF scoring, the
// mean-shift Gaussian profile, and the exp-and-renormalize pass — are bound
// by scalar log/exp. Each is exposed here as a batch function over
// contiguous arrays, implemented three times:
//
//   scalar  reference tier, bit-identical to the seed's per-element code
//           (std::log / std::exp, same expression order); compiled on every
//           platform.
//   sse2    2-lane vector tier (x86 only).
//   avx2    4-lane vector tier (x86 only; adds gathered bilinear lookups).
//
// Determinism policy (DESIGN.md §5.7): the DEFAULT tier is scalar, so a
// build that never touches the knob produces bit-identical results to the
// seed. Vector tiers are opt-in — RADLOC_SIMD=sse2|avx2 (or `auto` for the
// best the host supports), or force_tier() programmatically — and replace
// libm log/exp with polynomial vector versions accurate to ~1 ulp relative;
// the parity suite (tests/test_simd.cpp) pins them against scalar at
// tolerance. Everything else in the tables (rates, bilinear interpolation,
// max scans, Epanechnikov) is exact elementwise arithmetic and stays
// bit-identical across tiers. All kernels are elementwise (remainder lanes
// are computed through the same vector path via a padded tail), so results
// do not depend on how a caller chunks a range — thread-count determinism
// is preserved within every tier.
//
// Thread safety: kernels are pure functions over caller-owned buffers and
// can be fanned out freely. force_tier()/reset_tier() swap a global and
// must not race active kernel calls (tests/benches call them between runs).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace radloc::simd {

enum class Tier : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// A prepared bilinear node grid (TransmissionCache field view):
/// `nodes` is (nx+1) x (ny+1) values, row-major in y.
struct BilinearGrid {
  const double* nodes = nullptr;
  std::size_t nx = 0;  ///< cell count in x (nodes per row: nx + 1)
  std::size_t ny = 0;  ///< cell count in y
  double min_x = 0.0;
  double min_y = 0.0;
  double inv_dx = 0.0;
  double inv_dy = 0.0;
};

/// One tier's kernel table. All array arguments may overlap only where a
/// parameter is documented as in/out; `n` may be 0.
struct Kernels {
  Tier tier;
  const char* name;

  /// out[i] = k*log(lambda[i]) - lambda[i] - log_k_factorial, with the
  /// PoissonLogPmf edge semantics: k < 0 -> -inf; lambda <= 0 -> (k == 0 ?
  /// 0 : -inf); NaN/inf lambda propagate exactly as the scalar expression.
  /// `out` may fully alias `lambda` (rates are scored in place).
  void (*poisson_log_pmf)(double k, double log_k_factorial, const double* lambda, double* out,
                          std::size_t n);

  /// Per-element-k variant (MLE: one count per measurement):
  /// out[i] = k[i]*log(lambda[i]) - lambda[i] - log_k_factorial[i].
  /// `out` may fully alias `lambda`, but not `k`/`log_k_factorial`.
  void (*poisson_log_pmf_multi)(const double* k, const double* log_k_factorial,
                                const double* lambda, double* out, std::size_t n);

  /// Fused multi-reading variant (the filter's same-sensor batch path): the
  /// summed log-PMF of `reps` readings that share one rate per element,
  /// out[i] = k_sum*log(lambda[i]) - reps*lambda[i] - log_fact_sum
  /// with k_sum = sum of the counts and log_fact_sum = sum of their log(k!)
  /// terms. Edge semantics follow the per-reading sum: k_sum < 0 -> -inf;
  /// lambda <= 0 -> (k_sum == 0 ? 0 : -inf); NaN/inf lambda propagate as the
  /// scalar expression. With reps == 1 this reproduces poisson_log_pmf bit
  /// for bit (1.0 * lambda is exact). `out` may fully alias `lambda`.
  void (*poisson_log_pmf_fused)(double k_sum, double reps, double log_fact_sum,
                                const double* lambda, double* out, std::size_t n);

  /// Eq. (4) single-source hypothesis rates from SoA particle arrays:
  /// out[i] = scale * (s[i] / (1 + (x[i]-ax)^2 + (y[i]-ay)^2)) [* t[i]] + b
  /// with the exact association of expected_cpm_single_free_space /
  /// the cached-Eq.(3) path (scale = kMicroCurieToCpm * efficiency).
  /// `transmission` may be nullptr (free space). Exact in every tier.
  void (*hypothesis_rates)(double ax, double ay, double scale, double background, const double* x,
                           const double* y, const double* strength, const double* transmission,
                           double* out, std::size_t n);

  /// Batched TransmissionCache bilinear lookups (exact in every tier;
  /// AVX2 uses hardware gathers). Targets clamp to the boundary nodes.
  void (*bilinear)(const BilinearGrid& g, const double* x, const double* y, double* out,
                   std::size_t n);

  /// NaN-skipping max scan matching `if (v > m) m = v` from m = -inf.
  /// Exact in every tier. Returns -inf for n == 0.
  double (*max_value)(const double* v, std::size_t n);

  /// out[i] = exp(v[i] - shift) — the post-max renormalization pass.
  /// `out` may fully alias `v` (renormalize in place).
  void (*exp_shifted)(const double* v, double shift, double* out, std::size_t n);

  /// Mean-shift profile weights at center (cx, cy, s):
  ///   e = 0.5*((x-cx)^2+(y-cy)^2)/h2 + (ls-s)^2/hs2) ... exact seed order:
  ///   e = 0.5 * (d2 / h2 + (ls - s)^2 / hs2)
  ///   gaussian:     out[i] = w[i] * exp(-e)
  ///   epanechnikov: out[i] = w[i] * max(0, 1 - e/4.5)   (exact, all tiers)
  void (*meanshift_profile)(bool gaussian, double cx, double cy, double s, double h2, double hs2,
                            const double* x, const double* y, const double* log_strength,
                            const double* w, double* out, std::size_t n);
};

/// Best tier the host supports (cached after first call). Non-x86 builds
/// compile only the scalar tier and always report kScalar.
[[nodiscard]] Tier detected_tier();

/// The tier kernels() currently resolves to. Resolution order: a
/// force_tier() override wins; otherwise the RADLOC_SIMD environment knob
/// (scalar|sse2|avx2|auto), read once; otherwise kScalar — the
/// deterministic default. Requests above detected_tier() clamp down
/// (AVX2 -> SSE2 -> scalar).
[[nodiscard]] Tier active_tier();

/// Programmatic knob (tests/bench sweeps): route kernels() to `t`,
/// clamped to detected_tier(). Must not race in-flight kernel calls.
void force_tier(Tier t);

/// Drop the force_tier() override; back to env/default resolution.
void reset_tier();

/// True when the RADLOC_SIMD environment variable pinned a specific tier
/// (bench sweeps honor the pin instead of sweeping).
[[nodiscard]] bool tier_pinned_by_env();

/// The active tier's kernel table (one-time-resolved dispatch).
[[nodiscard]] const Kernels& kernels();

/// A specific tier's table, clamped to detected_tier(); tiers that do not
/// implement a kernel natively inherit the scalar version (exact anyway).
[[nodiscard]] const Kernels& kernels_for(Tier t);

[[nodiscard]] const char* tier_name(Tier t);

/// "scalar" | "sse2" | "avx2" | "auto" (case-sensitive) -> tier; nullopt
/// on anything else. `auto` maps to detected_tier().
[[nodiscard]] std::optional<Tier> parse_tier(const char* s);

/// Tiers a bench should sweep: the env-pinned tier alone when RADLOC_SIMD
/// is set, else every tier up to detected_tier().
[[nodiscard]] std::vector<Tier> sweep_tiers();

}  // namespace radloc::simd

// AVX2 kernel tier: 4 double lanes plus a hardware-gather bilinear for the
// TransmissionCache lookups. This file is compiled with -mavx2 when the
// toolchain targets x86 (see src/CMakeLists.txt); elsewhere the flag is
// absent, __AVX2__ is undefined, and avx2_kernels() reports the tier as
// unavailable. Nothing here executes unless runtime detection (or an
// explicit opt-in clamped by detection) selects the tier, so building the
// code on a non-AVX2 x86 host is safe: the table below is
// constant-initialized (no dynamic initializer runs AVX2 instructions).
#include "radloc/simd/simd.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace radloc::simd {
namespace avx2_impl {

struct VD {
  __m256d v;
};
struct VI {
  __m256i v;
};

constexpr std::size_t kLanes = 4;
constexpr int kFullMask = 0xF;

inline VD vset1(double x) { return {_mm256_set1_pd(x)}; }
inline VD vload(const double* p) { return {_mm256_loadu_pd(p)}; }
inline void vstore(double* p, VD a) { _mm256_storeu_pd(p, a.v); }
inline VD vadd(VD a, VD b) { return {_mm256_add_pd(a.v, b.v)}; }
inline VD vsub(VD a, VD b) { return {_mm256_sub_pd(a.v, b.v)}; }
inline VD vmul(VD a, VD b) { return {_mm256_mul_pd(a.v, b.v)}; }
inline VD vdiv(VD a, VD b) { return {_mm256_div_pd(a.v, b.v)}; }
inline VD vmax(VD a, VD b) { return {_mm256_max_pd(a.v, b.v)}; }
inline VD vmadd(VD a, VD b, VD c) { return {_mm256_fmadd_pd(a.v, b.v, c.v)}; }
inline VD vcmp_gt(VD a, VD b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ)}; }
inline VD vcmp_ge(VD a, VD b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ)}; }
inline VD vcmp_lt(VD a, VD b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)}; }
inline VD vcmp_le(VD a, VD b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_LE_OQ)}; }
inline VD vand(VD a, VD b) { return {_mm256_and_pd(a.v, b.v)}; }
inline VD vor(VD a, VD b) { return {_mm256_or_pd(a.v, b.v)}; }
inline VD vblend(VD mask, VD a, VD b) { return {_mm256_blendv_pd(b.v, a.v, mask.v)}; }
inline int vmovemask(VD a) { return _mm256_movemask_pd(a.v); }
inline VI vcasti(VD a) { return {_mm256_castpd_si256(a.v)}; }
inline VD vcastd(VI a) { return {_mm256_castsi256_pd(a.v)}; }
inline VI viadd(VI a, VI b) { return {_mm256_add_epi64(a.v, b.v)}; }
inline VI visub(VI a, VI b) { return {_mm256_sub_epi64(a.v, b.v)}; }
inline VI viand(VI a, VI b) { return {_mm256_and_si256(a.v, b.v)}; }
inline VI vior(VI a, VI b) { return {_mm256_or_si256(a.v, b.v)}; }
inline VI viset1(long long x) { return {_mm256_set1_epi64x(x)}; }
inline VI visll(VI a, int count) { return {_mm256_slli_epi64(a.v, count)}; }
inline VI visrl(VI a, int count) { return {_mm256_srli_epi64(a.v, count)}; }

#include "radloc/simd/kernels_vec.inl"

// Batched bilinear lookups with hardware gathers. Exact: every operation
// (clamp, truncate, fractional split, 2x2 blend) reproduces the scalar
// expression order of TransmissionCache::transmission bit for bit.
void k_bilinear(const BilinearGrid& g, const double* x, const double* y, double* out,
                std::size_t n) {
  const __m256d vminx = _mm256_set1_pd(g.min_x);
  const __m256d vminy = _mm256_set1_pd(g.min_y);
  const __m256d vinvdx = _mm256_set1_pd(g.inv_dx);
  const __m256d vinvdy = _mm256_set1_pd(g.inv_dy);
  const __m256d vnx = _mm256_set1_pd(static_cast<double>(g.nx));
  const __m256d vny = _mm256_set1_pd(static_cast<double>(g.ny));
  const __m128i imax_x = _mm_set1_epi32(static_cast<int>(g.nx) - 1);
  const __m128i imax_y = _mm_set1_epi32(static_cast<int>(g.ny) - 1);
  const __m128i irow = _mm_set1_epi32(static_cast<int>(g.nx) + 1);
  const __m128i ione = _mm_set1_epi32(1);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);

  const auto run = [&](const double* xp, const double* yp, double* o) {
    const __m256d u = _mm256_min_pd(
        _mm256_max_pd(_mm256_mul_pd(_mm256_sub_pd(_mm256_loadu_pd(xp), vminx), vinvdx), zero),
        vnx);
    const __m256d v = _mm256_min_pd(
        _mm256_max_pd(_mm256_mul_pd(_mm256_sub_pd(_mm256_loadu_pd(yp), vminy), vinvdy), zero),
        vny);
    const __m128i ci = _mm_min_epi32(_mm256_cvttpd_epi32(u), imax_x);
    const __m128i cj = _mm_min_epi32(_mm256_cvttpd_epi32(v), imax_y);
    const __m256d fu = _mm256_sub_pd(u, _mm256_cvtepi32_pd(ci));
    const __m256d fv = _mm256_sub_pd(v, _mm256_cvtepi32_pd(cj));
    const __m128i row = _mm_add_epi32(_mm_mullo_epi32(cj, irow), ci);
    // Masked gather with an all-ones mask: same loads, but the unmasked
    // intrinsic's GCC header reads an uninitialized pass-through source
    // (-Wmaybe-uninitialized noise).
    const __m256d allset = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    const auto gather = [&](__m128i idx) {
      return _mm256_mask_i32gather_pd(zero, g.nodes, idx, allset, 8);
    };
    const __m256d t00 = gather(row);
    const __m256d t10 = gather(_mm_add_epi32(row, ione));
    const __m128i row1 = _mm_add_epi32(row, irow);
    const __m256d t01 = gather(row1);
    const __m256d t11 = gather(_mm_add_epi32(row1, ione));
    const __m256d gu = _mm256_sub_pd(one, fu);
    const __m256d a = _mm256_add_pd(_mm256_mul_pd(gu, t00), _mm256_mul_pd(fu, t10));
    const __m256d b = _mm256_add_pd(_mm256_mul_pd(gu, t01), _mm256_mul_pd(fu, t11));
    _mm256_storeu_pd(
        o, _mm256_add_pd(_mm256_mul_pd(_mm256_sub_pd(one, fv), a), _mm256_mul_pd(fv, b)));
  };

  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) run(x + i, y + i, out + i);
  if (i < n) {
    double tx[kLanes];
    double ty[kLanes];
    double to[kLanes];
    const std::size_t r = n - i;
    for (std::size_t j = 0; j < kLanes; ++j) {
      tx[j] = j < r ? x[i + j] : g.min_x;  // padded lanes gather node (0,0)
      ty[j] = j < r ? y[i + j] : g.min_y;
    }
    run(tx, ty, to);
    for (std::size_t j = 0; j < r; ++j) out[i + j] = to[j];
  }
}

}  // namespace avx2_impl

namespace {
// Constant-initialized: avx2_kernels() below is called on every host while
// probing availability, so its body must not execute vector instructions —
// returning the address of a compile-time table cannot.
constexpr Kernels kAvx2Table{
    Tier::kAvx2,
    "avx2",
    &avx2_impl::k_poisson_log_pmf,
    &avx2_impl::k_poisson_log_pmf_multi,
    &avx2_impl::k_poisson_log_pmf_fused,
    &avx2_impl::k_hypothesis_rates,
    &avx2_impl::k_bilinear,
    &avx2_impl::k_max_value,
    &avx2_impl::k_exp_shifted,
    &avx2_impl::k_meanshift_profile,
};
}  // namespace

const Kernels* avx2_kernels() { return &kAvx2Table; }

}  // namespace radloc::simd

#else  // built without -mavx2 -mfma: tier unavailable at runtime.

namespace radloc::simd {
const Kernels* avx2_kernels() { return nullptr; }
}  // namespace radloc::simd

#endif

// SSE2 kernel tier: 2 double lanes. Compiled into every build; the vector
// body only exists when the compiler targets x86 with SSE2 (always true for
// x86-64), otherwise sse2_kernels() reports the tier as unavailable and
// dispatch falls back to scalar. SSE2 has no hardware gather, so the
// bilinear slot is left null and dispatch patches in the scalar version
// (bilinear is exact arithmetic in every tier, nothing is lost).
#include "radloc/simd/simd.hpp"

#if defined(__SSE2__) || defined(_M_X64)

#include <emmintrin.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace radloc::simd {
namespace sse2_impl {

struct VD {
  __m128d v;
};
struct VI {
  __m128i v;
};

constexpr std::size_t kLanes = 2;
constexpr int kFullMask = 0x3;

inline VD vset1(double x) { return {_mm_set1_pd(x)}; }
inline VD vload(const double* p) { return {_mm_loadu_pd(p)}; }
inline void vstore(double* p, VD a) { _mm_storeu_pd(p, a.v); }
inline VD vadd(VD a, VD b) { return {_mm_add_pd(a.v, b.v)}; }
inline VD vsub(VD a, VD b) { return {_mm_sub_pd(a.v, b.v)}; }
inline VD vmul(VD a, VD b) { return {_mm_mul_pd(a.v, b.v)}; }
inline VD vdiv(VD a, VD b) { return {_mm_div_pd(a.v, b.v)}; }
inline VD vmax(VD a, VD b) { return {_mm_max_pd(a.v, b.v)}; }
inline VD vmadd(VD a, VD b, VD c) { return {_mm_add_pd(_mm_mul_pd(a.v, b.v), c.v)}; }
inline VD vcmp_gt(VD a, VD b) { return {_mm_cmpgt_pd(a.v, b.v)}; }
inline VD vcmp_ge(VD a, VD b) { return {_mm_cmpge_pd(a.v, b.v)}; }
inline VD vcmp_lt(VD a, VD b) { return {_mm_cmplt_pd(a.v, b.v)}; }
inline VD vcmp_le(VD a, VD b) { return {_mm_cmple_pd(a.v, b.v)}; }
inline VD vand(VD a, VD b) { return {_mm_and_pd(a.v, b.v)}; }
inline VD vor(VD a, VD b) { return {_mm_or_pd(a.v, b.v)}; }
// mask ? a : b (SSE2 has no blendv; bitwise select on all-ones masks).
inline VD vblend(VD mask, VD a, VD b) {
  return {_mm_or_pd(_mm_and_pd(mask.v, a.v), _mm_andnot_pd(mask.v, b.v))};
}
inline int vmovemask(VD a) { return _mm_movemask_pd(a.v); }
inline VI vcasti(VD a) { return {_mm_castpd_si128(a.v)}; }
inline VD vcastd(VI a) { return {_mm_castsi128_pd(a.v)}; }
inline VI viadd(VI a, VI b) { return {_mm_add_epi64(a.v, b.v)}; }
inline VI visub(VI a, VI b) { return {_mm_sub_epi64(a.v, b.v)}; }
inline VI viand(VI a, VI b) { return {_mm_and_si128(a.v, b.v)}; }
inline VI vior(VI a, VI b) { return {_mm_or_si128(a.v, b.v)}; }
inline VI viset1(long long x) { return {_mm_set1_epi64x(x)}; }
inline VI visll(VI a, int count) { return {_mm_slli_epi64(a.v, count)}; }
inline VI visrl(VI a, int count) { return {_mm_srli_epi64(a.v, count)}; }

#include "radloc/simd/kernels_vec.inl"

}  // namespace sse2_impl

namespace {
constexpr Kernels kSse2Table{
    Tier::kSse2,
    "sse2",
    &sse2_impl::k_poisson_log_pmf,
    &sse2_impl::k_poisson_log_pmf_multi,
    &sse2_impl::k_poisson_log_pmf_fused,
    &sse2_impl::k_hypothesis_rates,
    nullptr,  // bilinear: scalar patched in by dispatch (exact either way)
    &sse2_impl::k_max_value,
    &sse2_impl::k_exp_shifted,
    &sse2_impl::k_meanshift_profile,
};
}  // namespace

const Kernels* sse2_kernels() { return &kSse2Table; }

}  // namespace radloc::simd

#else  // non-x86 build: tier unavailable, dispatch stays scalar-only.

namespace radloc::simd {
const Kernels* sse2_kernels() { return nullptr; }
}  // namespace radloc::simd

#endif

// Runtime tier resolution (AVX2 -> SSE2 -> scalar) and the RADLOC_SIMD knob.
//
// Resolution, in priority order:
//   1. force_tier(t)            — programmatic override (tests, bench sweeps)
//   2. RADLOC_SIMD env variable — scalar | sse2 | avx2 | auto, read once
//   3. default: scalar          — the deterministic, seed-bit-identical tier
// Every request clamps down to detected_tier(): asking for avx2 on an
// SSE2-only host yields sse2; on non-x86, scalar.
#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "radloc/simd/simd.hpp"

namespace radloc::simd {

// Tier tables, defined in kernels_{scalar,sse2,avx2}.cpp. The vector ones
// return nullptr when the build does not carry that tier.
const Kernels* scalar_kernels();
const Kernels* sse2_kernels();
const Kernels* avx2_kernels();

namespace {

struct EnvResolution {
  Tier tier;
  bool pinned;  // a specific tier was named (not unset / not `auto`)
};

Tier clamp_to_detected(Tier t) {
  const Tier d = detected_tier();
  return static_cast<int>(t) <= static_cast<int>(d) ? t : d;
}

EnvResolution resolve_env() {
  const char* v = std::getenv("RADLOC_SIMD");
  if (v == nullptr || *v == '\0') {
    return {Tier::kScalar, false};
  }
  if (const auto t = parse_tier(v)) {
    return {clamp_to_detected(*t), std::strcmp(v, "auto") != 0};
  }
  std::fprintf(stderr,
               "radloc: ignoring unrecognized RADLOC_SIMD='%s' "
               "(expected scalar|sse2|avx2|auto); using scalar\n",
               v);
  return {Tier::kScalar, false};
}

const EnvResolution& env_resolution() {
  static const EnvResolution r = resolve_env();
  return r;
}

// -1 = no override; otherwise the forced Tier value.
std::atomic<int> g_forced{-1};

std::array<Kernels, 3> build_tables() {
  const Kernels& s = *scalar_kernels();
  const auto patched = [&s](const Kernels* k) {
    if (k == nullptr) return s;  // tier not in this build (unreachable via clamp)
    Kernels out = *k;
    if (out.poisson_log_pmf == nullptr) out.poisson_log_pmf = s.poisson_log_pmf;
    if (out.poisson_log_pmf_multi == nullptr) out.poisson_log_pmf_multi = s.poisson_log_pmf_multi;
    if (out.poisson_log_pmf_fused == nullptr) out.poisson_log_pmf_fused = s.poisson_log_pmf_fused;
    if (out.hypothesis_rates == nullptr) out.hypothesis_rates = s.hypothesis_rates;
    if (out.bilinear == nullptr) out.bilinear = s.bilinear;
    if (out.max_value == nullptr) out.max_value = s.max_value;
    if (out.exp_shifted == nullptr) out.exp_shifted = s.exp_shifted;
    if (out.meanshift_profile == nullptr) out.meanshift_profile = s.meanshift_profile;
    return out;
  };
  return {s, patched(sse2_kernels()), patched(avx2_kernels())};
}

}  // namespace

Tier detected_tier() {
  static const Tier t = [] {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
    // The avx2 tier fuses its polynomial steps with FMA; every AVX2 part
    // ships FMA, but probe both to keep the guarantee explicit.
    if (avx2_kernels() != nullptr && __builtin_cpu_supports("avx2") &&
        __builtin_cpu_supports("fma")) {
      return Tier::kAvx2;
    }
    if (sse2_kernels() != nullptr && __builtin_cpu_supports("sse2")) return Tier::kSse2;
#endif
    return Tier::kScalar;
  }();
  return t;
}

Tier active_tier() {
  const int f = g_forced.load(std::memory_order_relaxed);
  if (f >= 0) return static_cast<Tier>(f);
  return env_resolution().tier;
}

void force_tier(Tier t) {
  g_forced.store(static_cast<int>(clamp_to_detected(t)), std::memory_order_relaxed);
}

void reset_tier() { g_forced.store(-1, std::memory_order_relaxed); }

bool tier_pinned_by_env() { return env_resolution().pinned; }

const Kernels& kernels_for(Tier t) {
  static const std::array<Kernels, 3> tables = build_tables();
  return tables[static_cast<std::size_t>(clamp_to_detected(t))];
}

const Kernels& kernels() { return kernels_for(active_tier()); }

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::kSse2:
      return "sse2";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kScalar:
      break;
  }
  return "scalar";
}

std::optional<Tier> parse_tier(const char* s) {
  if (s == nullptr) return std::nullopt;
  if (std::strcmp(s, "scalar") == 0) return Tier::kScalar;
  if (std::strcmp(s, "sse2") == 0) return Tier::kSse2;
  if (std::strcmp(s, "avx2") == 0) return Tier::kAvx2;
  if (std::strcmp(s, "auto") == 0) return detected_tier();
  return std::nullopt;
}

std::vector<Tier> sweep_tiers() {
  if (tier_pinned_by_env()) {
    return {active_tier()};
  }
  std::vector<Tier> tiers;
  for (int t = 0; t <= static_cast<int>(detected_tier()); ++t) {
    tiers.push_back(static_cast<Tier>(t));
  }
  return tiers;
}

}  // namespace radloc::simd

// Shared vector implementation of the batch kernels, included by the SSE2
// and AVX2 translation units inside their tier namespace. The including TU
// must first define:
//
//   struct VD { <native double vector> v; };   // kLanes doubles
//   struct VI { <native int vector> v; };      // kLanes int64 lanes
//   constexpr std::size_t kLanes; constexpr int kFullMask;
//   vset1 vload vstore vadd vsub vmul vdiv vmax
//   vcmp_gt vcmp_ge vcmp_lt vcmp_le (mask as VD) vblend(mask,a,b)
//   vand vor vmovemask
//   vcasti vcastd viadd visub viand vior viset1 visll visrl
//   vmadd(a,b,c) = a*b + c — fused (FMA) on AVX2, mul+add on SSE2; used
//   ONLY inside the log/exp polynomials, which are tier-divergent anyway,
//   never in the kernels documented as exact across tiers.
//
// and include <algorithm> <cmath> <cstddef> <limits> beforehand.
//
// Design rules (see simd.hpp):
// - Elementwise only: a value's result never depends on its lane position
//   or on neighbors, and the remainder of a range is pushed through the
//   same vector code via a padded tail — so results are invariant under
//   any chunking of the range (thread-count determinism per tier).
// - Special values (lambda <= 0, denormal, overflow range, NaN/inf) are
//   detected per lane with exact predicates and patched with the scalar
//   reference expression, which keeps edge semantics identical to the
//   scalar tier; only the in-range log/exp polynomials differ (by ~1 ulp).

// ---------------------------------------------------------------------------
// int64 lanes -> double (valid for |value| < 2^51): magic-bias trick.
inline VD int64_to_double(VI e) {
  const VD magic = vset1(6755399441055744.0);  // 1.5 * 2^52
  return vsub(vcastd(viadd(e, vcasti(magic))), magic);
}

// exp(x) for |x| < ~708 (callers patch the rest). Cody-Waite reduction
// x = n*ln2 + r, Taylor on r in [-ln2/2, ln2/2], exact 2^n scaling.
inline VD vexp_core(VD x) {
  const VD magic = vset1(6755399441055744.0);
  VD t = vadd(vmul(x, vset1(1.44269504088896340736)), magic);
  const VI n_i = visub(vcasti(t), vcasti(magic));  // round-to-nearest(x * log2 e)
  const VD n_d = vsub(t, magic);
  VD r = vsub(x, vmul(n_d, vset1(6.93147180369123816490e-01)));  // ln2_hi
  r = vsub(r, vmul(n_d, vset1(1.90821492927058770002e-10)));     // ln2_lo
  VD p = vset1(1.0 / 6227020800.0);                              // 1/13!
  p = vmadd(p, r, vset1(1.0 / 479001600.0));
  p = vmadd(p, r, vset1(1.0 / 39916800.0));
  p = vmadd(p, r, vset1(1.0 / 3628800.0));
  p = vmadd(p, r, vset1(1.0 / 362880.0));
  p = vmadd(p, r, vset1(1.0 / 40320.0));
  p = vmadd(p, r, vset1(1.0 / 5040.0));
  p = vmadd(p, r, vset1(1.0 / 720.0));
  p = vmadd(p, r, vset1(1.0 / 120.0));
  p = vmadd(p, r, vset1(1.0 / 24.0));
  p = vmadd(p, r, vset1(1.0 / 6.0));
  p = vmadd(p, r, vset1(0.5));
  p = vmadd(p, r, vset1(1.0));
  p = vmadd(p, r, vset1(1.0));
  const VI scale = visll(viadd(n_i, viset1(1023)), 52);
  return vmul(p, vcastd(scale));
}

// log(x) for positive normal finite x (callers patch the rest):
// x = m * 2^e with m in [sqrt2/2, sqrt2), log m = 2 atanh((m-1)/(m+1)).
inline VD vlog_core(VD x) {
  const VI bits = vcasti(x);
  VI e_i = visub(visrl(bits, 52), viset1(1022));  // m in [0.5, 1)
  const VI mbits = vior(viand(bits, viset1(0x000FFFFFFFFFFFFFLL)),
                        viset1(0x3FE0000000000000LL));  // exponent of 0.5
  VD m = vcastd(mbits);
  VD e_d = int64_to_double(e_i);
  const VD small = vcmp_lt(m, vset1(0.70710678118654752440));
  m = vblend(small, vadd(m, m), m);
  e_d = vsub(e_d, vand(small, vset1(1.0)));
  const VD one = vset1(1.0);
  const VD s = vdiv(vsub(m, one), vadd(m, one));  // |s| <= 0.1716
  const VD z = vmul(s, s);
  VD p = vset1(2.0 / 19.0);
  p = vmadd(p, z, vset1(2.0 / 17.0));
  p = vmadd(p, z, vset1(2.0 / 15.0));
  p = vmadd(p, z, vset1(2.0 / 13.0));
  p = vmadd(p, z, vset1(2.0 / 11.0));
  p = vmadd(p, z, vset1(2.0 / 9.0));
  p = vmadd(p, z, vset1(2.0 / 7.0));
  p = vmadd(p, z, vset1(2.0 / 5.0));
  p = vmadd(p, z, vset1(2.0 / 3.0));
  const VD log_m = vadd(vadd(s, s), vmul(vmul(s, z), p));
  return vadd(vmul(e_d, vset1(6.93147180369123816490e-01)),
              vadd(log_m, vmul(e_d, vset1(1.90821492927058770002e-10))));
}

// ---------------------------------------------------------------------------

inline constexpr double kVecNegInf = -std::numeric_limits<double>::infinity();
inline constexpr double kVecDblMin = 2.2250738585072014e-308;  // smallest normal
inline constexpr double kVecDblMax = 1.7976931348623157e308;

// Scalar reference for patched lanes — identical to the scalar tier.
inline double poisson_one_ref(double k, double log_k_factorial, double lambda) {
  if (lambda <= 0.0) {
    return k == 0.0 ? 0.0 : kVecNegInf;
  }
  return k * std::log(lambda) - lambda - log_k_factorial;
}

inline void k_poisson_log_pmf(double k, double log_k_factorial, const double* lambda, double* out,
                              std::size_t n) {
  if (k < 0.0) {
    std::fill(out, out + n, kVecNegInf);
    return;
  }
  const VD vk = vset1(k);
  const VD vc = vset1(log_k_factorial);
  const VD tiny = vset1(kVecDblMin);
  const VD big = vset1(kVecDblMax);
  // `out` may alias `lambda` (the filter scores rates in place), so bad
  // lanes save their inputs before the vector store clobbers them.
  const auto run = [&](const double* lam, double* o) {
    const VD l = vload(lam);
    const VD ok = vand(vcmp_ge(l, tiny), vcmp_le(l, big));
    const int bad = ~vmovemask(ok) & kFullMask;
    double orig[kLanes];
    if (bad != 0) vstore(orig, l);
    vstore(o, vsub(vsub(vmul(vk, vlog_core(l)), l), vc));
    if (bad != 0) {
      for (std::size_t j = 0; j < kLanes; ++j) {
        if ((bad >> j) & 1) o[j] = poisson_one_ref(k, log_k_factorial, orig[j]);
      }
    }
  };
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) run(lambda + i, out + i);
  if (i < n) {
    double tl[kLanes];
    double to[kLanes];
    const std::size_t r = n - i;
    for (std::size_t j = 0; j < kLanes; ++j) tl[j] = j < r ? lambda[i + j] : 1.0;
    run(tl, to);
    for (std::size_t j = 0; j < r; ++j) out[i + j] = to[j];
  }
}

inline void k_poisson_log_pmf_multi(const double* k, const double* log_k_factorial,
                                    const double* lambda, double* out, std::size_t n) {
  const VD tiny = vset1(kVecDblMin);
  const VD big = vset1(kVecDblMax);
  const VD zero = vset1(0.0);
  // `out` may alias `lambda` (never `k`/`log_k_factorial`); bad lanes save
  // their lambda before the vector store clobbers it.
  const auto run = [&](const double* kk, const double* cc, const double* lam, double* o) {
    const VD l = vload(lam);
    const VD vk = vload(kk);
    const VD ok = vand(vand(vcmp_ge(l, tiny), vcmp_le(l, big)), vcmp_ge(vk, zero));
    const int bad = ~vmovemask(ok) & kFullMask;
    double orig[kLanes];
    if (bad != 0) vstore(orig, l);
    vstore(o, vsub(vsub(vmul(vk, vlog_core(l)), l), vload(cc)));
    if (bad != 0) {
      for (std::size_t j = 0; j < kLanes; ++j) {
        if ((bad >> j) & 1) {
          o[j] = kk[j] < 0.0 ? kVecNegInf : poisson_one_ref(kk[j], cc[j], orig[j]);
        }
      }
    }
  };
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    run(k + i, log_k_factorial + i, lambda + i, out + i);
  }
  if (i < n) {
    double tk[kLanes];
    double tc[kLanes];
    double tl[kLanes];
    double to[kLanes];
    const std::size_t r = n - i;
    for (std::size_t j = 0; j < kLanes; ++j) {
      tk[j] = j < r ? k[i + j] : 0.0;
      tc[j] = j < r ? log_k_factorial[i + j] : 0.0;
      tl[j] = j < r ? lambda[i + j] : 1.0;
    }
    run(tk, tc, tl, to);
    for (std::size_t j = 0; j < r; ++j) out[i + j] = to[j];
  }
}

inline void k_poisson_log_pmf_fused(double k_sum, double reps, double log_fact_sum,
                                    const double* lambda, double* out, std::size_t n) {
  if (k_sum < 0.0) {
    std::fill(out, out + n, kVecNegInf);
    return;
  }
  const VD vk = vset1(k_sum);
  const VD vr = vset1(reps);
  const VD vc = vset1(log_fact_sum);
  const VD tiny = vset1(kVecDblMin);
  const VD big = vset1(kVecDblMax);
  // `out` may alias `lambda`; bad lanes save their inputs before the vector
  // store clobbers them (same pattern as the single-k kernel).
  const auto run = [&](const double* lam, double* o) {
    const VD l = vload(lam);
    const VD ok = vand(vcmp_ge(l, tiny), vcmp_le(l, big));
    const int bad = ~vmovemask(ok) & kFullMask;
    double orig[kLanes];
    if (bad != 0) vstore(orig, l);
    vstore(o, vsub(vsub(vmul(vk, vlog_core(l)), vmul(vr, l)), vc));
    if (bad != 0) {
      for (std::size_t j = 0; j < kLanes; ++j) {
        if ((bad >> j) & 1) {
          o[j] = orig[j] <= 0.0 ? (k_sum == 0.0 ? 0.0 : kVecNegInf)
                                : k_sum * std::log(orig[j]) - reps * orig[j] - log_fact_sum;
        }
      }
    }
  };
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) run(lambda + i, out + i);
  if (i < n) {
    double tl[kLanes];
    double to[kLanes];
    const std::size_t r = n - i;
    for (std::size_t j = 0; j < kLanes; ++j) tl[j] = j < r ? lambda[i + j] : 1.0;
    run(tl, to);
    for (std::size_t j = 0; j < r; ++j) out[i + j] = to[j];
  }
}

inline void k_hypothesis_rates(double ax, double ay, double scale, double background,
                               const double* x, const double* y, const double* strength,
                               const double* transmission, double* out, std::size_t n) {
  const VD vax = vset1(ax);
  const VD vay = vset1(ay);
  const VD vs = vset1(scale);
  const VD vb = vset1(background);
  const VD one = vset1(1.0);
  const auto run = [&](const double* xp, const double* yp, const double* sp, const double* tp,
                       double* o) {
    const VD dx = vsub(vax, vload(xp));
    const VD dy = vsub(vay, vload(yp));
    // Exact seed association: strength / (1.0 + (dx*dx + dy*dy)).
    const VD fs = vdiv(vload(sp), vadd(one, vadd(vmul(dx, dx), vmul(dy, dy))));
    if (tp != nullptr) {
      vstore(o, vadd(vmul(vmul(vs, fs), vload(tp)), vb));
    } else {
      vstore(o, vadd(vmul(vs, fs), vb));
    }
  };
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    run(x + i, y + i, strength + i, transmission != nullptr ? transmission + i : nullptr,
        out + i);
  }
  if (i < n) {
    double tx[kLanes];
    double ty[kLanes];
    double ts[kLanes];
    double tt[kLanes];
    double to[kLanes];
    const std::size_t r = n - i;
    for (std::size_t j = 0; j < kLanes; ++j) {
      tx[j] = j < r ? x[i + j] : ax;
      ty[j] = j < r ? y[i + j] : ay;
      ts[j] = j < r ? strength[i + j] : 0.0;
      tt[j] = transmission != nullptr && j < r ? transmission[i + j] : 0.0;
    }
    run(tx, ty, ts, transmission != nullptr ? tt : nullptr, to);
    for (std::size_t j = 0; j < r; ++j) out[i + j] = to[j];
  }
}

inline double k_max_value(const double* v, std::size_t n) {
  double m = kVecNegInf;
  std::size_t i = 0;
  if (n >= kLanes) {
    // `if (v > m) m = v` lane-wise: NaNs never replace m. Max is exact,
    // associative and commutative under these semantics, so the lane split
    // and reduction order cannot change the result.
    VD acc = vset1(kVecNegInf);
    for (; i + kLanes <= n; i += kLanes) {
      const VD val = vload(v + i);
      acc = vblend(vcmp_gt(val, acc), val, acc);
    }
    double lanes[kLanes];
    vstore(lanes, acc);
    for (std::size_t j = 0; j < kLanes; ++j) {
      if (lanes[j] > m) m = lanes[j];
    }
  }
  for (; i < n; ++i) {
    if (v[i] > m) m = v[i];
  }
  return m;
}

inline void k_exp_shifted(const double* v, double shift, double* out, std::size_t n) {
  const VD vsft = vset1(shift);
  const VD lo = vset1(-708.0);
  const VD hi = vset1(708.0);
  const auto run = [&](const double* vp, double* o) {
    const VD a = vsub(vload(vp), vsft);
    const VD ok = vand(vcmp_gt(a, lo), vcmp_lt(a, hi));
    const int bad = ~vmovemask(ok) & kFullMask;
    // `out` may alias `v` (in-place renormalization); bad lanes save their
    // inputs before the vector store clobbers them.
    double orig[kLanes];
    if (bad != 0) vstore(orig, vload(vp));
    vstore(o, vexp_core(a));
    if (bad != 0) {
      for (std::size_t j = 0; j < kLanes; ++j) {
        if ((bad >> j) & 1) o[j] = std::exp(orig[j] - shift);
      }
    }
  };
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) run(v + i, out + i);
  if (i < n) {
    double tv[kLanes];
    double to[kLanes];
    const std::size_t r = n - i;
    for (std::size_t j = 0; j < kLanes; ++j) tv[j] = j < r ? v[i + j] : shift;
    run(tv, to);
    for (std::size_t j = 0; j < r; ++j) out[i + j] = to[j];
  }
}

inline void k_meanshift_profile(bool gaussian, double cx, double cy, double s, double h2,
                                double hs2, const double* x, const double* y,
                                const double* log_strength, const double* w, double* out,
                                std::size_t n) {
  const VD vcx = vset1(cx);
  const VD vcy = vset1(cy);
  const VD vcs = vset1(s);
  const VD vh2 = vset1(h2);
  const VD vhs2 = vset1(hs2);
  const VD half = vset1(0.5);
  const VD zero = vset1(0.0);
  const VD one = vset1(1.0);
  const VD cap = vset1(708.0);
  const auto run = [&](const double* xp, const double* yp, const double* lsp, const double* wp,
                       double* o) {
    const VD dx = vsub(vload(xp), vcx);
    const VD dy = vsub(vload(yp), vcy);
    const VD dls = vsub(vload(lsp), vcs);
    // Exact seed association: 0.5 * (d2 / h2 + (ls - s)^2 / hs2).
    const VD e = vmul(half, vadd(vdiv(vadd(vmul(dx, dx), vmul(dy, dy)), vh2),
                                 vdiv(vmul(dls, dls), vhs2)));
    const VD vw = vload(wp);
    if (gaussian) {
      const VD ok = vand(vcmp_ge(e, zero), vcmp_lt(e, cap));
      vstore(o, vmul(vw, vexp_core(vsub(zero, e))));
      const int bad = ~vmovemask(ok) & kFullMask;
      if (bad != 0) {
        for (std::size_t j = 0; j < kLanes; ++j) {
          if ((bad >> j) & 1) {
            const double sdx = xp[j] - cx;
            const double sdy = yp[j] - cy;
            const double sdls = lsp[j] - s;
            const double se = 0.5 * ((sdx * sdx + sdy * sdy) / h2 + sdls * sdls / hs2);
            o[j] = wp[j] * std::exp(-se);
          }
        }
      }
    } else {
      // Exact arithmetic; vmax(t, 0) matches std::max(0.0, t) incl. NaN->0.
      const VD t = vsub(one, vdiv(e, vset1(4.5)));
      vstore(o, vmul(vw, vmax(t, zero)));
    }
  };
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    run(x + i, y + i, log_strength + i, w + i, out + i);
  }
  if (i < n) {
    double tx[kLanes];
    double ty[kLanes];
    double tls[kLanes];
    double tw[kLanes];
    double to[kLanes];
    const std::size_t r = n - i;
    for (std::size_t j = 0; j < kLanes; ++j) {
      tx[j] = j < r ? x[i + j] : cx;
      ty[j] = j < r ? y[i + j] : cy;
      tls[j] = j < r ? log_strength[i + j] : s;
      tw[j] = j < r ? w[i + j] : 0.0;
    }
    run(tx, ty, tls, tw, to);
    for (std::size_t j = 0; j < r; ++j) out[i + j] = to[j];
  }
}

// Scalar kernel tier — the bit-identical reference.
//
// Every function here replays the exact expression, evaluation order and
// edge semantics of the seed's per-element code (PoissonLogPmf,
// expected_cpm_single_free_space, TransmissionCache::transmission, the
// filter's max/exp renormalization, MeanShiftEstimator::ascend), so routing
// the hot paths through this tier changes no bit of any result. The vector
// tiers are validated against these functions by tests/test_simd.cpp.
#include <algorithm>
#include <cmath>
#include <limits>

#include "radloc/simd/simd.hpp"

namespace radloc::simd {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// PoissonLogPmf::operator() with k and log(k!) hoisted by the caller.
double poisson_one(double k, double log_k_factorial, double lambda) {
  if (lambda <= 0.0) {
    return k == 0.0 ? 0.0 : kNegInf;
  }
  return k * std::log(lambda) - lambda - log_k_factorial;
}

void poisson_log_pmf(double k, double log_k_factorial, const double* lambda, double* out,
                     std::size_t n) {
  if (k < 0.0) {
    std::fill(out, out + n, kNegInf);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) out[i] = poisson_one(k, log_k_factorial, lambda[i]);
}

void poisson_log_pmf_multi(const double* k, const double* log_k_factorial, const double* lambda,
                           double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = k[i] < 0.0 ? kNegInf : poisson_one(k[i], log_k_factorial[i], lambda[i]);
  }
}

// Sum of `reps` single-k terms sharing one rate; reps == 1 replays
// poisson_one bit for bit (1.0 * lambda is exact).
void poisson_log_pmf_fused(double k_sum, double reps, double log_fact_sum, const double* lambda,
                           double* out, std::size_t n) {
  if (k_sum < 0.0) {
    std::fill(out, out + n, kNegInf);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (lambda[i] <= 0.0) {
      out[i] = k_sum == 0.0 ? 0.0 : kNegInf;
    } else {
      out[i] = k_sum * std::log(lambda[i]) - reps * lambda[i] - log_fact_sum;
    }
  }
}

void hypothesis_rates(double ax, double ay, double scale, double background, const double* x,
                      const double* y, const double* strength, const double* transmission,
                      double* out, std::size_t n) {
  if (transmission == nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      const double dx = ax - x[i];
      const double dy = ay - y[i];
      const double fs = strength[i] / (1.0 + (dx * dx + dy * dy));
      out[i] = scale * fs + background;
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      const double dx = ax - x[i];
      const double dy = ay - y[i];
      const double fs = strength[i] / (1.0 + (dx * dx + dy * dy));
      out[i] = scale * fs * transmission[i] + background;
    }
  }
}

void bilinear(const BilinearGrid& g, const double* x, const double* y, double* out,
              std::size_t n) {
  const auto nx_d = static_cast<double>(g.nx);
  const auto ny_d = static_cast<double>(g.ny);
  for (std::size_t p = 0; p < n; ++p) {
    const double u = std::clamp((x[p] - g.min_x) * g.inv_dx, 0.0, nx_d);
    const double v = std::clamp((y[p] - g.min_y) * g.inv_dy, 0.0, ny_d);
    const std::size_t i = std::min(static_cast<std::size_t>(u), g.nx - 1);
    const std::size_t j = std::min(static_cast<std::size_t>(v), g.ny - 1);
    const double fu = u - static_cast<double>(i);
    const double fv = v - static_cast<double>(j);

    const std::size_t row = j * (g.nx + 1) + i;
    const double t00 = g.nodes[row];
    const double t10 = g.nodes[row + 1];
    const double t01 = g.nodes[row + g.nx + 1];
    const double t11 = g.nodes[row + g.nx + 2];
    out[p] = (1.0 - fv) * ((1.0 - fu) * t00 + fu * t10) + fv * ((1.0 - fu) * t01 + fu * t11);
  }
}

double max_value(const double* v, std::size_t n) {
  double m = kNegInf;
  for (std::size_t i = 0; i < n; ++i) {
    if (v[i] > m) m = v[i];
  }
  return m;
}

void exp_shifted(const double* v, double shift, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = std::exp(v[i] - shift);
}

void meanshift_profile(bool gaussian, double cx, double cy, double s, double h2, double hs2,
                       const double* x, const double* y, const double* log_strength,
                       const double* w, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - cx;
    const double dy = y[i] - cy;
    const double dls = log_strength[i] - s;
    const double e = 0.5 * ((dx * dx + dy * dy) / h2 + dls * dls / hs2);
    out[i] = w[i] * (gaussian ? std::exp(-e) : std::max(0.0, 1.0 - e / 4.5));
  }
}

}  // namespace

const Kernels* scalar_kernels() {
  static const Kernels kTable{
      Tier::kScalar,   "scalar",  &poisson_log_pmf, &poisson_log_pmf_multi,
      &poisson_log_pmf_fused,
      &hypothesis_rates, &bilinear, &max_value,       &exp_shifted,
      &meanshift_profile,
  };
  return &kTable;
}

}  // namespace radloc::simd

// Regional (tiled) distributed localization.
//
// The fusion-range design makes updates LOCAL: a measurement only touches
// particles within d of its sensor. That locality admits a distributed
// deployment — partition the surveillance area into tiles, run an
// independent localizer per tile over the sensors in (tile + margin), and
// route each measurement to the tiles whose margin contains its sensor.
// Tiles never communicate; a cheap merge step at the fusion center
// concatenates their estimates, with each tile reporting only sources
// inside its CORE rectangle so overlaps cannot double-report.
//
// Payoffs: per-tile state is smaller (particle count scales with tile
// area), tiles process in parallel (true multi-core scaling beyond the
// mean-shift stage), and a tile failure only blinds its own region.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "radloc/concurrency/thread_pool.hpp"
#include "radloc/core/localizer.hpp"
#include "radloc/radiation/environment.hpp"
#include "radloc/sensornet/sensor.hpp"

namespace radloc {

struct RegionalConfig {
  std::size_t tiles_x = 2;
  std::size_t tiles_y = 2;
  /// Tile bounds are expanded by this margin for sensor assignment and
  /// particle support, so sources near tile edges are seen from both
  /// sides. Should be >= the fusion range.
  double margin = 28.0;
  /// Per-tile localizer settings. The particle count is interpreted as the
  /// GLOBAL budget and divided by the number of tiles.
  LocalizerConfig localizer;
  /// Worker threads for parallel tile processing.
  std::size_t num_threads = 1;
};

class RegionalLocalizerGrid {
 public:
  /// `env` must outlive the grid. Sensors keep their global ids at the
  /// interface; routing and local re-indexing are internal.
  RegionalLocalizerGrid(const Environment& env, std::vector<Sensor> sensors,
                        RegionalConfig cfg, std::uint64_t seed);

  /// Routes one time step of measurements to the owning tiles and runs all
  /// tiles in parallel.
  void process_time_step(std::span<const Measurement> batch);

  /// Tile estimates concatenated under core ownership (no duplicates by
  /// construction), sorted by support.
  [[nodiscard]] std::vector<SourceEstimate> estimate();

  [[nodiscard]] std::size_t num_tiles() const { return tiles_.size(); }
  /// Core rectangle of tile t (row-major).
  [[nodiscard]] const AreaBounds& tile_core(std::size_t t) const { return tiles_[t]->core; }
  /// Number of sensors assigned to tile t (its expanded rectangle).
  [[nodiscard]] std::size_t tile_sensor_count(std::size_t t) const {
    return tiles_[t]->sensors.size();
  }

 private:
  struct Tile {
    AreaBounds core;
    Environment env;  ///< expanded bounds, same obstacles
    std::vector<Sensor> sensors;             ///< re-indexed locally
    std::vector<std::uint32_t> global_ids;   ///< local -> global id
    std::unique_ptr<MultiSourceLocalizer> localizer;
    std::vector<Measurement> inbox;          ///< this step's routed batch

    Tile(AreaBounds core_rect, Environment tile_env)
        : core(core_rect), env(std::move(tile_env)) {}
  };

  const Environment* env_;
  RegionalConfig cfg_;
  std::vector<std::unique_ptr<Tile>> tiles_;
  /// For each global sensor id, the tiles it reports to.
  std::vector<std::vector<std::pair<std::uint32_t, SensorId>>> routes_;
  ThreadPool pool_;
};

}  // namespace radloc

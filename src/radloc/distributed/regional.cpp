#include "radloc/distributed/regional.hpp"

#include <algorithm>
#include <cmath>

#include "radloc/common/math.hpp"

namespace radloc {

RegionalLocalizerGrid::RegionalLocalizerGrid(const Environment& env,
                                             std::vector<Sensor> sensors, RegionalConfig cfg,
                                             std::uint64_t seed)
    : env_(&env), cfg_(cfg), pool_(cfg.num_threads) {
  require(cfg_.tiles_x >= 1 && cfg_.tiles_y >= 1, "need at least one tile");
  require(cfg_.margin >= 0.0, "margin must be non-negative");
  require(!sensors.empty(), "regional grid needs sensors");

  const AreaBounds& bounds = env.bounds();
  const double tw = bounds.width() / static_cast<double>(cfg_.tiles_x);
  const double th = bounds.height() / static_cast<double>(cfg_.tiles_y);
  const std::size_t particles_per_tile = std::max<std::size_t>(
      cfg_.localizer.filter.num_particles / (cfg_.tiles_x * cfg_.tiles_y), 200);

  routes_.resize(sensors.size());
  Rng seeder(seed);

  for (std::size_t ty = 0; ty < cfg_.tiles_y; ++ty) {
    for (std::size_t tx = 0; tx < cfg_.tiles_x; ++tx) {
      const AreaBounds core{
          {bounds.min.x + static_cast<double>(tx) * tw,
           bounds.min.y + static_cast<double>(ty) * th},
          {bounds.min.x + static_cast<double>(tx + 1) * tw,
           bounds.min.y + static_cast<double>(ty + 1) * th}};
      const AreaBounds expanded{
          bounds.clamp(core.min - Vec2{cfg_.margin, cfg_.margin}),
          bounds.clamp(core.max + Vec2{cfg_.margin, cfg_.margin})};

      auto tile = std::make_unique<Tile>(core, Environment(expanded, env.obstacles()));
      const auto tile_index = static_cast<std::uint32_t>(tiles_.size());

      // Sensors within the expanded rectangle report to this tile, with
      // dense local ids.
      for (const Sensor& s : sensors) {
        if (!expanded.contains(s.pos)) continue;
        const auto local_id = static_cast<SensorId>(tile->sensors.size());
        Sensor local = s;
        local.id = local_id;
        tile->sensors.push_back(local);
        tile->global_ids.push_back(s.id);
        routes_[s.id].emplace_back(tile_index, local_id);
      }

      if (!tile->sensors.empty()) {
        LocalizerConfig lcfg = cfg_.localizer;
        lcfg.filter.num_particles = particles_per_tile;
        lcfg.num_threads = 1;  // parallelism lives at the tile level
        tile->localizer = std::make_unique<MultiSourceLocalizer>(tile->env, tile->sensors,
                                                                 lcfg, seeder());
      }
      tiles_.push_back(std::move(tile));
    }
  }
}

void RegionalLocalizerGrid::process_time_step(std::span<const Measurement> batch) {
  for (auto& tile : tiles_) tile->inbox.clear();
  for (const Measurement& m : batch) {
    require(m.sensor < routes_.size(), "measurement from unknown sensor");
    for (const auto& [tile_index, local_id] : routes_[m.sensor]) {
      tiles_[tile_index]->inbox.push_back(Measurement{local_id, m.cpm});
    }
  }
  pool_.for_each_index(tiles_.size(), [&](std::size_t t) {
    Tile& tile = *tiles_[t];
    if (!tile.localizer) return;
    tile.localizer->process_all(tile.inbox);
  });
}

std::vector<SourceEstimate> RegionalLocalizerGrid::estimate() {
  std::vector<std::vector<SourceEstimate>> per_tile(tiles_.size());
  pool_.for_each_index(tiles_.size(), [&](std::size_t t) {
    if (tiles_[t]->localizer) per_tile[t] = tiles_[t]->localizer->estimate();
  });

  // Core ownership: a tile only reports sources inside its own core, so
  // the same physical source seen by two overlapping tiles is reported by
  // exactly one. Points on shared edges belong to the lower-index tile
  // (contains() is boundary-inclusive; de-dup by construction order).
  std::vector<SourceEstimate> merged;
  for (std::size_t t = 0; t < tiles_.size(); ++t) {
    for (const auto& e : per_tile[t]) {
      if (!tiles_[t]->core.contains(e.pos)) continue;
      bool edge_duplicate = false;
      for (std::size_t prev = 0; prev < t; ++prev) {
        if (tiles_[prev]->core.contains(e.pos)) {
          edge_duplicate = true;
          break;
        }
      }
      if (!edge_duplicate) merged.push_back(e);
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const SourceEstimate& a, const SourceEstimate& b) {
              return a.support > b.support;
            });
  return merged;
}

}  // namespace radloc

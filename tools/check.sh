#!/usr/bin/env bash
# radloc correctness gauntlet: tier-1 tests plus the sanitizer suites.
#
#   tools/check.sh            # release + asan + tsan (full ctest each)
#   tools/check.sh release    # any subset of: release asan tsan benchsmoke
#   RADLOC_CHECK_JOBS=8 tools/check.sh
#
# The release stage's ctest includes the `benchsmoke` label (every bench
# binary in --smoke mode); pass `benchsmoke` as a stage to run only those.
#
# Each stage is a CMake preset (see CMakePresets.json); build trees land in
# build/<preset>. The script stops at the first failing stage.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${RADLOC_CHECK_JOBS:-$(nproc)}"
stages=("$@")
if [ ${#stages[@]} -eq 0 ]; then
  stages=(release asan tsan)
fi

for stage in "${stages[@]}"; do
  # benchsmoke shares the release build tree; its test preset filters to
  # the bench --smoke entries.
  build_preset="$stage"
  case "$stage" in
    release|asan|tsan) ;;
    benchsmoke) build_preset="release" ;;
    *) echo "check.sh: unknown stage '$stage' (want release|asan|tsan|benchsmoke)" >&2; exit 2 ;;
  esac
  echo "==> [$stage] configure"
  cmake --preset "$build_preset" >/dev/null
  echo "==> [$stage] build"
  cmake --build --preset "$build_preset" -j "$jobs"
  echo "==> [$stage] ctest"
  ctest --preset "$stage" -j "$jobs"
  echo "==> [$stage] OK"
done

echo "All stages passed: ${stages[*]}"

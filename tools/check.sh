#!/usr/bin/env bash
# radloc correctness gauntlet: tier-1 tests plus the sanitizer suites.
#
#   tools/check.sh            # release + asan + tsan (full ctest each)
#   tools/check.sh release    # any subset of: release asan tsan
#   RADLOC_CHECK_JOBS=8 tools/check.sh
#
# Each stage is a CMake preset (see CMakePresets.json); build trees land in
# build/<preset>. The script stops at the first failing stage.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${RADLOC_CHECK_JOBS:-$(nproc)}"
stages=("$@")
if [ ${#stages[@]} -eq 0 ]; then
  stages=(release asan tsan)
fi

for stage in "${stages[@]}"; do
  case "$stage" in
    release|asan|tsan) ;;
    *) echo "check.sh: unknown stage '$stage' (want release|asan|tsan)" >&2; exit 2 ;;
  esac
  echo "==> [$stage] configure"
  cmake --preset "$stage" >/dev/null
  echo "==> [$stage] build"
  cmake --build --preset "$stage" -j "$jobs"
  echo "==> [$stage] ctest"
  ctest --preset "$stage" -j "$jobs"
  echo "==> [$stage] OK"
done

echo "All stages passed: ${stages[*]}"

#!/usr/bin/env bash
# radloc correctness gauntlet: tier-1 tests plus the sanitizer suites.
#
#   tools/check.sh            # release + asan + tsan (full ctest each)
#   tools/check.sh release    # any subset of: release asan tsan benchsmoke serve obs
#   RADLOC_CHECK_JOBS=8 tools/check.sh
#
# The release stage's ctest includes the `benchsmoke` label (every bench
# binary in --smoke mode); pass `benchsmoke` as a stage to run only those.
# The benchsmoke stage runs the label three times — once pinned to the
# portable scalar SIMD tier (RADLOC_SIMD=scalar), once with the knob unset so
# the dispatcher picks the host's best tier, and once with the scoring cache
# forced on (RADLOC_SCORING_CACHE=64) so every bench exercises the cached
# scoring path too — then diffs the fresh bench JSON against the committed
# baselines with tools/bench_compare.py
# (informational: smoke numbers are noisy, so regressions never fail the
# gauntlet here; run bench_compare.py --strict by hand on full runs).
#
# The `serve` stage smoke-tests the streaming service end to end: radloc_serve
# in all three ingest modes (synthetic, trace replay, stdin line protocol)
# plus bench_session_multiplex --smoke diffed against the committed
# BENCH_session_multiplex.json. The diff is informational by default; pass
# --strict to make flagged regressions fail the stage.
#
# The `obs` stage smoke-tests the observability layer (DESIGN.md §5.11):
# radloc_serve with --metrics-out/--trace-out, python3-validating that the
# Prometheus exposition and the trace JSONL parse, then
# bench_telemetry_overhead --smoke diffed against the committed baseline.
#
# Each stage is a CMake preset (see CMakePresets.json); build trees land in
# build/<preset>. The script stops at the first failing stage.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${RADLOC_CHECK_JOBS:-$(nproc)}"
strict=""
stages=()
for arg in "$@"; do
  case "$arg" in
    --strict) strict="--strict" ;;
    *) stages+=("$arg") ;;
  esac
done
if [ ${#stages[@]} -eq 0 ]; then
  stages=(release asan tsan)
fi

for stage in "${stages[@]}"; do
  # benchsmoke shares the release build tree; its test preset filters to
  # the bench --smoke entries.
  build_preset="$stage"
  case "$stage" in
    release|asan|tsan) ;;
    benchsmoke|serve|obs) build_preset="release" ;;
    *) echo "check.sh: unknown stage '$stage' (want release|asan|tsan|benchsmoke|serve|obs)" >&2; exit 2 ;;
  esac
  echo "==> [$stage] configure"
  cmake --preset "$build_preset" >/dev/null
  echo "==> [$stage] build"
  cmake --build --preset "$build_preset" -j "$jobs"
  if [ "$stage" = serve ]; then
    tree="build/$build_preset"
    echo "==> [$stage] synthetic ingest smoke"
    "$tree/tools/radloc_serve" --sessions 3 --synthetic 4 --particles 400 \
        --dump-every 2 --seed 5
    echo "==> [$stage] trace replay smoke"
    "$tree/tools/radloc_sim" --scenario A --steps 3 --trials 1 \
        --trace "$tree/serve_smoke_trace.csv" >/dev/null
    "$tree/tools/radloc_serve" --replay "$tree/serve_smoke_trace.csv" --scenario A \
        --sessions 2 --particles 400 --dump-every 0
    echo "==> [$stage] line-protocol smoke"
    printf 'ingest 1 0.0 0 12.5\ningest 1 0.0 1 -5\ndrain\nstats 1\nestimate 1\nquit\n' | \
        "$tree/tools/radloc_serve" --sessions 1 --stdin --particles 300
    echo "==> [$stage] bench_session_multiplex --smoke + compare vs baseline"
    (cd "$tree/bench" && ./bench_session_multiplex --smoke)
    if [ -n "$strict" ]; then
      python3 tools/bench_compare.py session_multiplex --fresh-dir "$tree/bench" --strict
    else
      python3 tools/bench_compare.py session_multiplex --fresh-dir "$tree/bench" || true
    fi
    echo "==> [$stage] OK"
    continue
  fi
  if [ "$stage" = obs ]; then
    tree="build/$build_preset"
    echo "==> [$stage] radloc_serve with metrics + trace dumps"
    "$tree/tools/radloc_serve" --sessions 2 --synthetic 4 --particles 400 \
        --dump-every 2 --seed 5 \
        --metrics-out "$tree/obs_smoke_metrics.prom" \
        --trace-out "$tree/obs_smoke_trace.jsonl" --trace-sample 1 >/dev/null
    echo "==> [$stage] validate Prometheus exposition + trace JSONL"
    python3 - "$tree/obs_smoke_metrics.prom" "$tree/obs_smoke_trace.jsonl" <<'PYEOF'
import json, re, sys
metrics, trace = sys.argv[1], sys.argv[2]
line_re = re.compile(r'^(# TYPE \w+ (counter|gauge|histogram)|\w+(\{[^}]*\})? \S+)$')
names = set()
with open(metrics) as f:
    for line in f:
        assert line_re.match(line.rstrip("\n")), f"bad exposition line: {line!r}"
        if not line.startswith("#"):
            names.add(line.split("{")[0].split(" ")[0])
for required in ("radloc_session_readings_processed_total",
                 "radloc_session_drain_latency_us_bucket",
                 "radloc_pool_queue_depth", "radloc_sessions_open"):
    assert required in names, f"missing metric: {required}"
spans = 0
with open(trace) as f:
    for line in f:
        event = json.loads(line)
        assert event["type"] == "span" and "stage" in event, event
        spans += 1
assert spans > 0, "no spans recorded"
print(f"ok: {len(names)} metric series, {spans} spans")
PYEOF
    echo "==> [$stage] bench_telemetry_overhead --smoke + compare vs baseline"
    (cd "$tree/bench" && ./bench_telemetry_overhead --smoke)
    if [ -n "$strict" ]; then
      python3 tools/bench_compare.py telemetry_overhead --fresh-dir "$tree/bench" --strict
    else
      python3 tools/bench_compare.py telemetry_overhead --fresh-dir "$tree/bench" || true
    fi
    echo "==> [$stage] OK"
    continue
  fi
  echo "==> [$stage] ctest"
  if [ "$stage" = benchsmoke ]; then
    # Both SIMD dispatch paths: forced-scalar (the bit-identical default
    # tier) and env-unset (host's detected tier, e.g. AVX2 on x86).
    echo "==> [$stage] pass 1/3: RADLOC_SIMD=scalar"
    RADLOC_SIMD=scalar ctest --preset "$stage" -j "$jobs"
    echo "==> [$stage] pass 2/3: RADLOC_SIMD unset (host tier)"
    env -u RADLOC_SIMD ctest --preset "$stage" -j "$jobs"
    # Third pass forces the (default-off) generation-versioned scoring cache
    # on in every bench, so the cached scoring path cannot bit-rot unnoticed
    # between dedicated bench_scoring_cache runs.
    echo "==> [$stage] pass 3/3: RADLOC_SCORING_CACHE=64 (host tier)"
    env -u RADLOC_SIMD RADLOC_SCORING_CACHE=64 ctest --preset "$stage" -j "$jobs"
    echo "==> [$stage] bench_compare vs committed baselines (informational)"
    python3 tools/bench_compare.py --fresh-dir "build/$build_preset/bench" || true
  else
    ctest --preset "$stage" -j "$jobs"
  fi
  echo "==> [$stage] OK"
done

echo "All stages passed: ${stages[*]}"

#!/usr/bin/env bash
# radloc correctness gauntlet: tier-1 tests plus the sanitizer suites.
#
#   tools/check.sh            # release + asan + tsan (full ctest each)
#   tools/check.sh release    # any subset of: release asan tsan benchsmoke
#   RADLOC_CHECK_JOBS=8 tools/check.sh
#
# The release stage's ctest includes the `benchsmoke` label (every bench
# binary in --smoke mode); pass `benchsmoke` as a stage to run only those.
# The benchsmoke stage runs the label twice — once pinned to the portable
# scalar SIMD tier (RADLOC_SIMD=scalar) and once with the knob unset so the
# dispatcher picks the host's best tier — then diffs the fresh bench JSON
# against the committed baselines with tools/bench_compare.py
# (informational: smoke numbers are noisy, so regressions never fail the
# gauntlet here; run bench_compare.py --strict by hand on full runs).
#
# Each stage is a CMake preset (see CMakePresets.json); build trees land in
# build/<preset>. The script stops at the first failing stage.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${RADLOC_CHECK_JOBS:-$(nproc)}"
stages=("$@")
if [ ${#stages[@]} -eq 0 ]; then
  stages=(release asan tsan)
fi

for stage in "${stages[@]}"; do
  # benchsmoke shares the release build tree; its test preset filters to
  # the bench --smoke entries.
  build_preset="$stage"
  case "$stage" in
    release|asan|tsan) ;;
    benchsmoke) build_preset="release" ;;
    *) echo "check.sh: unknown stage '$stage' (want release|asan|tsan|benchsmoke)" >&2; exit 2 ;;
  esac
  echo "==> [$stage] configure"
  cmake --preset "$build_preset" >/dev/null
  echo "==> [$stage] build"
  cmake --build --preset "$build_preset" -j "$jobs"
  echo "==> [$stage] ctest"
  if [ "$stage" = benchsmoke ]; then
    # Both SIMD dispatch paths: forced-scalar (the bit-identical default
    # tier) and env-unset (host's detected tier, e.g. AVX2 on x86).
    echo "==> [$stage] pass 1/2: RADLOC_SIMD=scalar"
    RADLOC_SIMD=scalar ctest --preset "$stage" -j "$jobs"
    echo "==> [$stage] pass 2/2: RADLOC_SIMD unset (host tier)"
    env -u RADLOC_SIMD ctest --preset "$stage" -j "$jobs"
    echo "==> [$stage] bench_compare vs committed baselines (informational)"
    python3 tools/bench_compare.py --fresh-dir "build/$build_preset/bench" || true
  else
    ctest --preset "$stage" -j "$jobs"
  fi
  echo "==> [$stage] OK"
done

echo "All stages passed: ${stages[*]}"

// radloc_sim — command-line scenario runner.
//
// Runs a paper scenario (or a custom source set) end to end: simulate
// measurements, localize online, print the per-step metrics, and
// optionally write the measurement trace (CSV) and per-step SVG snapshots.
//
//   radloc_sim --scenario A --strength 10 --steps 30 --seed 7
//   radloc_sim --scenario B --trials 3 --report csv
//   radloc_sim --scenario A3 --svg-prefix /tmp/frame --trace /tmp/run.csv
//
// Run with --help for the full flag list.
#include <cstdlib>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>

#include "radloc/radloc.hpp"
#include "radloc/viz/svg.hpp"

namespace {

using namespace radloc;

struct Options {
  std::string scenario = "A";
  double strength = 10.0;
  double background = 5.0;
  bool obstacles = false;
  std::size_t steps = 30;
  std::size_t trials = 1;
  std::size_t threads = 1;
  std::optional<std::size_t> particles;
  std::uint64_t seed = 1;
  std::string delivery = "auto";  // auto | inorder | shuffled | latency
  double loss = 0.0;
  std::string report = "table";  // table | csv
  std::string trace_path;
  std::string svg_prefix;
};

[[noreturn]] void usage(int code) {
  std::cout <<
      "radloc_sim — multi-source radiation localization scenario runner\n\n"
      "  --scenario {A,A3,B,C}   paper scenario (default A)\n"
      "  --strength <uCi>        source strength for A/A3 (default 10)\n"
      "  --background <CPM>      per-sensor background (default 5)\n"
      "  --obstacles             enable the scenario's obstacles\n"
      "  --steps <n>             time steps (default 30)\n"
      "  --trials <n>            averaging trials (default 1)\n"
      "  --threads <n>           trial-level worker threads; results are\n"
      "                          bit-identical at any count (default 1, or\n"
      "                          the RADLOC_THREADS env var)\n"
      "  --particles <n>         override particle count\n"
      "  --seed <n>              RNG seed (default 1)\n"
      "  --delivery <kind>       auto|inorder|shuffled|latency (default auto)\n"
      "  --loss <frac>           measurement loss rate (default 0)\n"
      "  --report {table,csv}    output format (default table)\n"
      "  --trace <file>          save the trial-0 measurement trace as CSV\n"
      "  --svg-prefix <prefix>   save <prefix>_NN.svg snapshots (trial 0)\n"
      "  --help\n";
  std::exit(code);
}

Options parse(int argc, char** argv) {
  Options opt;
  if (const char* v = std::getenv("RADLOC_THREADS")) {
    const long parsed = std::strtol(v, nullptr, 10);
    if (parsed > 0) opt.threads = static_cast<std::size_t>(parsed);
  }
  auto next = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      usage(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--help" || a == "-h") usage(0);
    else if (a == "--scenario") opt.scenario = next(i);
    else if (a == "--strength") opt.strength = std::stod(next(i));
    else if (a == "--background") opt.background = std::stod(next(i));
    else if (a == "--obstacles") opt.obstacles = true;
    else if (a == "--steps") opt.steps = std::stoul(next(i));
    else if (a == "--trials") opt.trials = std::stoul(next(i));
    else if (a == "--threads") opt.threads = std::stoul(next(i));
    else if (a == "--particles") opt.particles = std::stoul(next(i));
    else if (a == "--seed") opt.seed = std::stoull(next(i));
    else if (a == "--delivery") opt.delivery = next(i);
    else if (a == "--loss") opt.loss = std::stod(next(i));
    else if (a == "--report") opt.report = next(i);
    else if (a == "--trace") opt.trace_path = next(i);
    else if (a == "--svg-prefix") opt.svg_prefix = next(i);
    else {
      std::cerr << "unknown flag: " << a << "\n";
      usage(2);
    }
  }
  return opt;
}

Scenario build_scenario(const Options& opt) {
  if (opt.scenario == "A") return make_scenario_a(opt.strength, opt.background, opt.obstacles);
  if (opt.scenario == "A3") return make_scenario_a3(opt.strength, opt.background);
  if (opt.scenario == "B") return make_scenario_b(opt.background, opt.obstacles);
  if (opt.scenario == "C") return make_scenario_c(opt.background, opt.obstacles);
  std::cerr << "unknown scenario: " << opt.scenario << "\n";
  usage(2);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  Scenario scenario = build_scenario(opt);
  if (opt.particles) scenario.recommended_particles = *opt.particles;

  ExperimentOptions exp;
  exp.trials = opt.trials;
  exp.num_threads = opt.threads;
  exp.time_steps = opt.steps;
  exp.seed = opt.seed;
  exp.loss_rate = opt.loss;
  if (opt.delivery == "inorder") exp.delivery_override = DeliveryKind::kInOrder;
  else if (opt.delivery == "shuffled") exp.delivery_override = DeliveryKind::kShuffled;
  else if (opt.delivery == "latency") exp.delivery_override = DeliveryKind::kRandomLatency;
  else if (opt.delivery != "auto") {
    std::cerr << "unknown delivery kind: " << opt.delivery << "\n";
    return 2;
  }

  // Optional artifacts from a dedicated trial-0 style run.
  if (!opt.trace_path.empty() || !opt.svg_prefix.empty()) {
    MeasurementSimulator sim(scenario.env, scenario.sensors, scenario.sources);
    LocalizerConfig cfg;
    cfg.filter.num_particles = scenario.recommended_particles;
    cfg.filter.fusion_range = scenario.recommended_fusion_range;
    MultiSourceLocalizer loc(scenario.env, scenario.sensors, cfg, opt.seed);
    Rng noise(opt.seed ^ 0x5555);
    MeasurementTrace trace;
    for (std::size_t t = 0; t < opt.steps; ++t) {
      auto batch = sim.sample_time_step(noise);
      trace.record_step(batch);
      loc.process_all(batch);
      if (!opt.svg_prefix.empty()) {
        const auto estimates = loc.estimate();
        auto canvas = render_scene(scenario.env, scenario.sensors, scenario.sources,
                                   loc.filter().positions(), estimates);
        std::ostringstream name;
        name << opt.svg_prefix << '_' << (t < 10 ? "0" : "") << t << ".svg";
        canvas.save(name.str());
      }
    }
    if (!opt.trace_path.empty()) {
      trace.save_csv_file(opt.trace_path);
      std::cout << "trace written to " << opt.trace_path << " (" << trace.num_measurements()
                << " measurements)\n";
    }
    if (!opt.svg_prefix.empty()) {
      std::cout << "SVG snapshots written to " << opt.svg_prefix << "_NN.svg\n";
    }
  }

  const auto result = run_experiment(scenario, exp);
  const auto names = default_source_names(scenario.sources.size());
  if (opt.report == "csv") {
    write_time_series_csv(std::cout, result, names);
  } else {
    print_banner(std::cout, "scenario " + scenario.name + ": localization error / FP / FN");
    print_time_series(std::cout, result, names);
    std::cout << "late-window (last half) mean error: "
              << result.avg_error_all(opt.steps / 2, opt.steps)
              << "  FP: " << result.avg_false_positives(opt.steps / 2, opt.steps)
              << "  FN: " << result.avg_false_negatives(opt.steps / 2, opt.steps) << "\n";
  }
  return 0;
}

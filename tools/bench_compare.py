#!/usr/bin/env python3
"""Diff fresh BENCH_*.json results against the committed baselines.

Usage:
    tools/bench_compare.py [--fresh-dir DIR] [--baseline-dir DIR]
                           [--threshold FRAC] [--strict] [name ...]

Compares every requested bench (default: weight_update,
experiment_throughput) whose BENCH_<name>.json exists in BOTH directories.
Rows are matched on (scenario, config, metric, threads); the direction of
"better" is inferred from the metric name (rates and speedups up, times and
errors down). Changes beyond the threshold (default 15%) are printed as
REGRESSION or IMPROVEMENT lines.

The exit code is informational by default (always 0, so tools/check.sh can
surface regressions without failing the gauntlet — bench numbers from smoke
runs or loaded machines are noisy); pass --strict to exit 1 when any
regression is flagged. Rows present on only one side are reported but never
flagged: tier sweeps legitimately differ across hosts (a scalar-only machine
emits no simd:avx2 rows), which is also why baselines record `host_simd`.
"""

import argparse
import json
import os
import sys

DEFAULT_BENCHES = [
    "weight_update",
    "experiment_throughput",
    "session_multiplex",
    "adaptive_budget",
    "scoring_cache",
    "telemetry_overhead",
]

# Metric-name fragments that identify the "bigger is better" direction.
HIGHER_IS_BETTER = ("per_sec", "speedup", "throughput", "frac")
LOWER_IS_BETTER = ("sec_per", "_ms", "_us", "_seconds", "error", "rmse", "nll")


def load_rows(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    rows = {}
    for r in doc.get("results", []):
        key = (r.get("scenario"), r.get("config"), r.get("metric"), r.get("threads"))
        rows[key] = r.get("value")
    return doc, rows


def direction(metric):
    name = (metric or "").lower()
    if any(tag in name for tag in HIGHER_IS_BETTER):
        return +1
    if any(tag in name for tag in LOWER_IS_BETTER):
        return -1
    return 0  # unknown: report the change, flag nothing


def compare_bench(name, fresh_dir, baseline_dir, threshold):
    fresh_path = os.path.join(fresh_dir, f"BENCH_{name}.json")
    base_path = os.path.join(baseline_dir, f"BENCH_{name}.json")
    if not os.path.exists(base_path):
        print(f"[{name}] no committed baseline at {base_path}; skipping")
        return 0
    if not os.path.exists(fresh_path):
        print(f"[{name}] no fresh results at {fresh_path}; skipping")
        return 0

    base_doc, base_rows = load_rows(base_path)
    fresh_doc, fresh_rows = load_rows(fresh_path)
    if fresh_doc.get("smoke") and not base_doc.get("smoke"):
        print(f"[{name}] note: fresh results are from a --smoke run; expect noise")
    if fresh_doc.get("host_simd") != base_doc.get("host_simd"):
        print(
            f"[{name}] note: host_simd differs "
            f"(baseline {base_doc.get('host_simd')!r}, fresh {fresh_doc.get('host_simd')!r})"
        )

    regressions = 0
    for key in sorted(base_rows, key=str):
        scenario, config, metric, threads = key
        label = f"{scenario} | {config} | {metric} | threads={threads}"
        if key not in fresh_rows:
            print(f"[{name}] only in baseline: {label}")
            continue
        old, new = base_rows[key], fresh_rows[key]
        if old is None or new is None or old == 0:
            continue
        change = (new - old) / abs(old)
        sign = direction(metric)
        flagged = sign != 0 and sign * change < -threshold
        improved = sign != 0 and sign * change > threshold
        if flagged:
            regressions += 1
            tag = "REGRESSION "
        elif improved:
            tag = "IMPROVEMENT"
        else:
            continue
        print(f"[{name}] {tag} {change:+7.1%}  {label}  ({old:.6g} -> {new:.6g})")
    for key in sorted(set(fresh_rows) - set(base_rows), key=str):
        scenario, config, metric, threads = key
        print(f"[{name}] new row (no baseline): {scenario} | {config} | {metric}")
    if regressions == 0:
        print(f"[{name}] no regressions beyond {threshold:.0%}")
    return regressions


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("benches", nargs="*", default=None, help="bench names (BENCH_<name>.json)")
    ap.add_argument("--fresh-dir", default=".", help="directory with fresh BENCH_*.json")
    ap.add_argument("--baseline-dir", default=None, help="directory with committed baselines "
                    "(default: repo root, inferred from this script's location)")
    ap.add_argument("--threshold", type=float, default=0.15, help="flag fraction (default 0.15)")
    ap.add_argument("--strict", action="store_true", help="exit 1 when regressions are flagged")
    args = ap.parse_args()

    baseline_dir = args.baseline_dir
    if baseline_dir is None:
        baseline_dir = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    benches = args.benches or DEFAULT_BENCHES

    total = 0
    for name in benches:
        total += compare_bench(name, args.fresh_dir, baseline_dir, args.threshold)
    if total:
        print(f"bench_compare: {total} regression(s) beyond threshold (informational)")
    return 1 if (args.strict and total) else 0


if __name__ == "__main__":
    sys.exit(main())

// radloc_serve — streaming multi-session localization service driver.
//
// Front-end for the SessionManager (DESIGN.md §5.8): opens N independent
// surveillance-area sessions over one shared worker pool, feeds them an
// interleaved measurement stream, drains them as batched pool work, and
// periodically dumps per-session estimates plus telemetry.
//
// Ingest modes (pick one):
//   --synthetic <steps>   per-session simulated feeds from the scenario's
//                         sources (per-session noise seeds; default mode)
//   --replay <trace.csv>  replay a radloc_sim-recorded trace into every
//                         session (sensor indices must match --scenario)
//   --stdin               line protocol on standard input:
//                           ingest <session> <timestamp> <sensor> <cpm>
//                           drain | estimate <session> | stats <session> | quit
//
//   radloc_serve --sessions 8 --synthetic 20 --dump-every 10
//   radloc_sim --scenario A --steps 10 --trials 1 --trace t.csv
//   radloc_serve --replay t.csv --scenario A --sessions 4
//
// Run with --help for the full flag list.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "radloc/obs/export.hpp"
#include "radloc/radloc.hpp"

namespace {

using namespace radloc;

struct Options {
  std::string scenario = "A";
  double strength = 10.0;
  double background = 5.0;
  bool obstacles = false;
  std::size_t sessions = 4;
  std::size_t synthetic_steps = 20;
  std::string replay_path;
  bool use_stdin = false;
  std::size_t dump_every = 10;  // 0 = only the final dump
  std::size_t threads = 1;
  std::optional<std::size_t> particles;
  std::size_t queue_capacity = 1024;
  bool drop_oldest = false;
  bool order_by_timestamp = false;
  bool adaptive = false;
  std::size_t scoring_cache = 0;
  bool fused = false;
  std::uint64_t seed = 1;
  std::string metrics_out;  // Prometheus text dump path ("" = metrics off)
  std::string trace_out;    // stage-span JSONL path ("" = tracing off)
  std::uint64_t trace_sample = obs::TraceSink::kDefaultSampleInterval;
};

[[noreturn]] void usage(int code) {
  std::cout <<
      "radloc_serve — multi-session streaming localization service\n\n"
      "  --sessions <n>          concurrent sessions (default 4)\n"
      "  --synthetic <steps>     synthetic per-session feeds (default, 20 steps)\n"
      "  --replay <trace.csv>    replay a recorded trace into every session\n"
      "  --stdin                 line-protocol ingest from standard input\n"
      "  --scenario {A,A3,B,C}   sensor/source layout (default A)\n"
      "  --strength <uCi>        source strength for A/A3 (default 10)\n"
      "  --background <CPM>      per-sensor background (default 5)\n"
      "  --obstacles             enable the scenario's obstacles\n"
      "  --particles <n>         override per-session particle count\n"
      "  --adaptive              adaptive particle budget per session (KLD\n"
      "                          controller, min = particles/4, max = particles;\n"
      "                          watch the budget/ess stats columns)\n"
      "  --scoring-cache <n>     per-session scoring cache of n entries\n"
      "                          (generation-versioned hypothesis rates;\n"
      "                          bit-identical, pure speed — watch hit%)\n"
      "  --fused                 fuse consecutive same-sensor readings in each\n"
      "                          drain into one weight update (tolerance-\n"
      "                          pinned; watch the fuse stats column)\n"
      "  --queue-capacity <n>    per-session bounded ingest queue (default 1024)\n"
      "  --drop-oldest           backpressure evicts oldest instead of\n"
      "                          rejecting the newest reading\n"
      "  --order-by-timestamp    drain batches in timestamp order\n"
      "  --dump-every <k>        dump estimates every k steps (0 = final only)\n"
      "  --metrics-out <path>    rewrite a Prometheus text-format metrics dump\n"
      "                          at every dump point (enables the metrics\n"
      "                          registry; see DESIGN.md §5.11)\n"
      "  --trace-out <path>      append pipeline stage spans as JSONL at every\n"
      "                          dump point (enables stage tracing)\n"
      "  --trace-sample <n>      record every n-th stage span (default 16;\n"
      "                          0 disables sampling entirely)\n"
      "  --threads <n>           shared pool workers (default 1, or the\n"
      "                          RADLOC_THREADS env var)\n"
      "  --seed <n>              RNG seed (default 1)\n"
      "  --help\n";
  std::exit(code);
}

Options parse(int argc, char** argv) {
  Options opt;
  if (const char* v = std::getenv("RADLOC_THREADS")) {
    const long parsed = std::strtol(v, nullptr, 10);
    if (parsed > 0) opt.threads = static_cast<std::size_t>(parsed);
  }
  auto next = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      usage(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--help" || a == "-h") usage(0);
    else if (a == "--sessions") opt.sessions = std::stoul(next(i));
    else if (a == "--synthetic") opt.synthetic_steps = std::stoul(next(i));
    else if (a == "--replay") opt.replay_path = next(i);
    else if (a == "--stdin") opt.use_stdin = true;
    else if (a == "--scenario") opt.scenario = next(i);
    else if (a == "--strength") opt.strength = std::stod(next(i));
    else if (a == "--background") opt.background = std::stod(next(i));
    else if (a == "--obstacles") opt.obstacles = true;
    else if (a == "--particles") opt.particles = std::stoul(next(i));
    else if (a == "--queue-capacity") opt.queue_capacity = std::stoul(next(i));
    else if (a == "--adaptive") opt.adaptive = true;
    else if (a == "--scoring-cache") opt.scoring_cache = std::stoul(next(i));
    else if (a == "--fused") opt.fused = true;
    else if (a == "--drop-oldest") opt.drop_oldest = true;
    else if (a == "--order-by-timestamp") opt.order_by_timestamp = true;
    else if (a == "--dump-every") opt.dump_every = std::stoul(next(i));
    else if (a == "--metrics-out") opt.metrics_out = next(i);
    else if (a == "--trace-out") opt.trace_out = next(i);
    else if (a == "--trace-sample") opt.trace_sample = std::stoull(next(i));
    else if (a == "--threads") opt.threads = std::stoul(next(i));
    else if (a == "--seed") opt.seed = std::stoull(next(i));
    else {
      std::cerr << "unknown flag: " << a << "\n";
      usage(2);
    }
  }
  if (opt.use_stdin && !opt.replay_path.empty()) {
    std::cerr << "--stdin and --replay are mutually exclusive\n";
    usage(2);
  }
  if (opt.sessions == 0) {
    std::cerr << "--sessions must be at least 1\n";
    usage(2);
  }
  return opt;
}

Scenario build_scenario(const Options& opt) {
  if (opt.scenario == "A") return make_scenario_a(opt.strength, opt.background, opt.obstacles);
  if (opt.scenario == "A3") return make_scenario_a3(opt.strength, opt.background);
  if (opt.scenario == "B") return make_scenario_b(opt.background, opt.obstacles);
  if (opt.scenario == "C") return make_scenario_c(opt.background, opt.obstacles);
  std::cerr << "unknown scenario: " << opt.scenario << "\n";
  usage(2);
}

/// Observability outputs: the registry/sink the manager feeds, plus the
/// dump destinations. flush() is the periodic dump hook — called at every
/// estimate-dump point and once at exit. Metrics are a rewrite (scrape
/// semantics: the file is always one complete, current exposition); trace
/// spans are drained from the ring and appended (events are consumed, so
/// each flush writes only what arrived since the last one).
struct ObsOutputs {
  std::string metrics_path;
  std::string trace_path;
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceSink* trace = nullptr;

  void flush() const {
    if (metrics != nullptr && !metrics_path.empty()) {
      std::ofstream out(metrics_path, std::ios::trunc);
      if (!out) {
        std::cerr << "warning: cannot write metrics to " << metrics_path << "\n";
      } else {
        obs::write_prometheus(*metrics, out);
      }
    }
    if (trace != nullptr && !trace_path.empty()) {
      const std::vector<obs::TraceEvent> events = trace->drain();
      if (events.empty()) return;
      std::ofstream out(trace_path, std::ios::app);
      if (!out) {
        std::cerr << "warning: cannot append trace to " << trace_path << "\n";
      } else {
        obs::write_trace_jsonl(events, out);
      }
    }
  }
};

void dump_estimates(SessionManager& mgr, const std::vector<SessionManager::SessionId>& ids,
                    const std::string& tag) {
  for (std::size_t k = 0; k < ids.size(); ++k) {
    const auto estimates = mgr.estimate(ids[k]);
    std::cout << "[" << tag << "] session " << ids[k] << ": " << estimates.size()
              << " source(s)";
    for (const auto& e : estimates) {
      std::cout << "  (" << e.pos.x << ", " << e.pos.y << ") @ " << e.strength;
    }
    std::cout << "\n";
  }
}

void dump_stats(SessionManager& mgr, const std::vector<SessionManager::SessionId>& ids) {
  std::cout << "session  queued  ingested  processed  applied  malformed  full  dropped"
               "  p50_us  p99_us  budget  ess  hit%  fuse\n";
  for (const auto id : ids) {
    const SessionStats st = mgr.stats(id);
    std::cout << id << "  " << st.queue_depth << "  " << st.ingested << "  " << st.processed
              << "  " << st.applied << "  " << st.rejected_malformed << "  "
              << st.rejected_full << "  " << st.dropped_oldest << "  " << st.p50_latency_us
              << "  " << st.p99_latency_us << "  " << st.current_budget << "  "
              << st.ess_fraction << "  " << 100.0 * st.cache_hit_rate << "  "
              << st.fused_batch_len << "\n";
  }
}

/// Feeds one time step of measurements into a session, tagging each reading
/// with the step index as its timestamp. Returns admitted count.
std::size_t ingest_step(SessionManager& mgr, SessionManager::SessionId id,
                        const std::vector<Measurement>& step, double timestamp) {
  std::size_t admitted = 0;
  for (const Measurement& m : step) {
    const IngestStatus status = mgr.ingest(id, SessionReading{timestamp, m});
    if (status == IngestStatus::kQueued || status == IngestStatus::kQueuedDroppedOldest) {
      ++admitted;
    }
  }
  return admitted;
}

int run_synthetic(const Options& opt, const Scenario& scenario, SessionManager& mgr,
                  const std::vector<SessionManager::SessionId>& ids, const ObsOutputs& obsout) {
  // One simulator + noise stream per session: independent tenants watching
  // the same scenario layout.
  std::vector<MeasurementSimulator> sims;
  std::vector<Rng> noise;
  for (std::size_t k = 0; k < ids.size(); ++k) {
    sims.emplace_back(scenario.env, scenario.sensors, scenario.sources);
    noise.emplace_back(opt.seed ^ (0x9E3779B97F4A7C15ULL * (k + 1)));
  }
  for (std::size_t t = 0; t < opt.synthetic_steps; ++t) {
    for (std::size_t k = 0; k < ids.size(); ++k) {
      ingest_step(mgr, ids[k], sims[k].sample_time_step(noise[k]), static_cast<double>(t));
    }
    mgr.drain_all();
    if (opt.dump_every != 0 && (t + 1) % opt.dump_every == 0) {
      dump_estimates(mgr, ids, "t=" + std::to_string(t + 1));
      obsout.flush();
    }
  }
  return 0;
}

int run_replay(const Options& opt, SessionManager& mgr,
               const std::vector<SessionManager::SessionId>& ids, const ObsOutputs& obsout) {
  const MeasurementTrace trace = MeasurementTrace::load_csv_file(opt.replay_path);
  std::cout << "replaying " << trace.num_measurements() << " measurements over "
            << trace.num_steps() << " steps into " << ids.size() << " session(s)\n";
  for (std::size_t t = 0; t < trace.num_steps(); ++t) {
    for (const auto id : ids) {
      ingest_step(mgr, id, trace.step(t), static_cast<double>(t));
    }
    mgr.drain_all();
    if (opt.dump_every != 0 && (t + 1) % opt.dump_every == 0) {
      dump_estimates(mgr, ids, "t=" + std::to_string(t + 1));
      obsout.flush();
    }
  }
  return 0;
}

int run_stdin(SessionManager& mgr, const std::vector<SessionManager::SessionId>& ids,
              const ObsOutputs& obsout) {
  // Minimal line protocol; session ids are the ones printed at startup.
  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream is(line);
    std::string cmd;
    if (!(is >> cmd) || cmd.empty() || cmd[0] == '#') continue;
    try {
      if (cmd == "quit") break;
      if (cmd == "drain") {
        std::cout << "drained " << mgr.drain_all() << " reading(s)\n";
        obsout.flush();
      } else if (cmd == "ingest") {
        SessionManager::SessionId id = 0;
        SessionReading r;
        if (!(is >> id >> r.timestamp >> r.m.sensor >> r.m.cpm)) {
          std::cout << "error: usage: ingest <session> <timestamp> <sensor> <cpm>\n";
          continue;
        }
        std::cout << to_string(mgr.ingest(id, r)) << "\n";
      } else if (cmd == "estimate") {
        SessionManager::SessionId id = 0;
        if (!(is >> id)) {
          std::cout << "error: usage: estimate <session>\n";
          continue;
        }
        dump_estimates(mgr, {id}, "estimate");
      } else if (cmd == "stats") {
        SessionManager::SessionId id = 0;
        if (!(is >> id)) {
          std::cout << "error: usage: stats <session>\n";
          continue;
        }
        dump_stats(mgr, {id});
      } else {
        std::cout << "error: unknown command '" << cmd
                  << "' (ingest|drain|estimate|stats|quit)\n";
      }
    } catch (const std::exception& e) {
      std::cout << "error: " << e.what() << "\n";
    }
  }
  (void)ids;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  const Scenario scenario = build_scenario(opt);

  SessionConfig cfg;
  cfg.localizer.filter.num_particles =
      opt.particles ? *opt.particles : scenario.recommended_particles;
  cfg.localizer.filter.fusion_range = scenario.recommended_fusion_range;
  if (opt.adaptive) {
    auto& f = cfg.localizer.filter;
    f.adaptive_budget = true;
    f.max_particles = f.num_particles;
    f.min_particles = std::max<std::size_t>(f.num_particles / 4, 50);
    f.ess_resample_threshold = 0.5;
  }
  cfg.localizer.filter.scoring_cache_entries = opt.scoring_cache;
  cfg.localizer.filter.fused_batch_updates = opt.fused;
  cfg.queue_capacity = opt.queue_capacity;
  cfg.backpressure =
      opt.drop_oldest ? BackpressurePolicy::kDropOldest : BackpressurePolicy::kRejectNewest;
  cfg.drain_order = opt.order_by_timestamp ? DrainOrder::kTimestamp : DrainOrder::kArrival;

  ThreadPool pool(opt.threads, opt.threads);
  // Observability backends are created only when a dump path asks for them:
  // the default run carries a null handle and pays nothing (the manager
  // falls back to session-owned latency histograms for its stats).
  obs::MetricsRegistry registry;
  std::optional<obs::TraceSink> sink;
  if (!opt.trace_out.empty()) {
    sink.emplace(obs::TraceSink::kDefaultCapacity, opt.trace_sample);
  }
  ObsOutputs obsout;
  obsout.metrics_path = opt.metrics_out;
  obsout.trace_path = opt.trace_out;
  if (!opt.metrics_out.empty()) obsout.metrics = &registry;
  if (sink) obsout.trace = &*sink;
  SessionManager mgr(pool, ServiceObservability{obsout.metrics, obsout.trace});
  std::vector<SessionManager::SessionId> ids;
  for (std::size_t k = 0; k < opt.sessions; ++k) {
    ids.push_back(mgr.open(scenario.env, scenario.sensors, cfg, opt.seed ^ (k * 7919)));
  }
  std::cout << "opened " << ids.size() << " session(s) [" << ids.front() << ".."
            << ids.back() << "] on scenario " << scenario.name << ", "
            << cfg.localizer.filter.num_particles << " particles each\n";

  int rc = 0;
  if (opt.use_stdin) {
    rc = run_stdin(mgr, ids, obsout);
  } else if (!opt.replay_path.empty()) {
    rc = run_replay(opt, mgr, ids, obsout);
  } else {
    rc = run_synthetic(opt, scenario, mgr, ids, obsout);
  }
  mgr.drain_all();
  dump_estimates(mgr, ids, "final");
  dump_stats(mgr, ids);
  obsout.flush();
  return rc;
}
